// MixedCode engine and X-code: distributed-parity layouts, exhaustive
// tolerance, update optimality.
#include <gtest/gtest.h>

#include "codes/mixed_code.h"
#include "codes/verify.h"
#include "common/buffer.h"
#include "common/error.h"
#include "common/prng.h"

namespace approx::codes {
namespace {

void roundtrip(const MixedCode& code, const std::vector<int>& erased) {
  const std::size_t block = 48;
  StripeBuffers buf(code.total_nodes(),
                    block * static_cast<std::size_t>(code.rows()));
  Rng rng(7);
  // Fill information cells (parity cells get computed by encode).
  for (int n = 0; n < code.total_nodes(); ++n) {
    auto s = buf.node(n);
    fill_random(s.data(), s.size(), rng);
  }
  auto spans = buf.spans();
  code.encode_blocks(spans, block);
  std::vector<std::vector<std::uint8_t>> want;
  for (int n = 0; n < code.total_nodes(); ++n) {
    want.emplace_back(buf.node(n).begin(), buf.node(n).end());
  }
  for (const int e : erased) buf.clear_node(e);
  auto spans2 = buf.spans();
  ASSERT_TRUE(code.repair_blocks(spans2, block, erased));
  for (int n = 0; n < code.total_nodes(); ++n) {
    ASSERT_TRUE(std::equal(buf.node(n).begin(), buf.node(n).end(),
                           want[static_cast<std::size_t>(n)].begin()))
        << code.name() << " node " << n;
  }
}

class XcodeSweep : public testing::TestWithParam<int> {};

TEST_P(XcodeSweep, GeometryMatchesXuBruck) {
  const int p = GetParam();
  auto x = make_xcode(p);
  EXPECT_EQ(x->total_nodes(), p);
  EXPECT_EQ(x->rows(), p);
  EXPECT_EQ(x->info_count(), p * (p - 2));
  EXPECT_NEAR(x->storage_overhead(),
              static_cast<double>(p) / static_cast<double>(p - 2), 1e-12);
}

TEST_P(XcodeSweep, ToleratesAllDoubleFailures) {
  const int p = GetParam();
  auto x = make_xcode(p);
  for (int n1 = 0; n1 < p; ++n1) {
    for (int n2 = n1 + 1; n2 < p; ++n2) {
      EXPECT_TRUE(x->can_repair(std::vector<int>{n1, n2}))
          << "p=" << p << " {" << n1 << "," << n2 << "}";
    }
  }
  // Triple failures exceed the design.
  EXPECT_FALSE(x->can_repair(std::vector<int>{0, 1, 2}));
}

TEST_P(XcodeSweep, RoundtripsDoubleFailures) {
  const int p = GetParam();
  auto x = make_xcode(p);
  roundtrip(*x, {0, 1});
  roundtrip(*x, {0, p - 1});
  roundtrip(*x, {1, p / 2});
}

INSTANTIATE_TEST_SUITE_P(Primes, XcodeSweep, testing::Values(5, 7, 11, 13),
                         [](const auto& in) {
                           return "p" + std::to_string(in.param);
                         });

TEST(Xcode, UpdateComplexityIsOptimal) {
  // Every data cell belongs to exactly two parity cells: cost 3 - the
  // optimum for double-fault tolerance, and the property dedicated-parity
  // RAID-6 columns cannot reach (EVENODD pays 4 - 2/p).
  for (const int p : {5, 7, 11, 13}) {
    auto x = make_xcode(p);
    EXPECT_DOUBLE_EQ(x->avg_single_write_cost(), 3.0) << p;
  }
}

TEST(Xcode, SingleFailurePeelsSparseSchedules) {
  auto x = make_xcode(7);
  auto plan = x->plan_repair(std::vector<int>{3});
  ASSERT_NE(plan, nullptr);
  // Data cells resolve through one parity chain each: p-2 data sources + 1
  // parity source; parity cells recompute from p-2 cells.
  for (const auto& target : plan->targets) {
    EXPECT_LE(target.sources.size(), 6u);
  }
}

TEST(MixedCode, ConstructionValidation) {
  std::vector<MixedCode::Element> table(4);
  table[0].info = 0;
  table[1].info = 1;
  table[2].is_parity = true;
  table[2].terms = {{0, 1}, {1, 1}};
  table[3].is_parity = true;
  table[3].terms = {{0, 1}};
  EXPECT_NO_THROW(MixedCode("ok", 2, 2, table, 1));

  auto dup = table;
  dup[1].info = 0;  // duplicate info index
  EXPECT_THROW(MixedCode("bad", 2, 2, dup, 1), InvalidArgument);

  auto out_of_range = table;
  out_of_range[2].terms = {{5, 1}};
  EXPECT_THROW(MixedCode("bad", 2, 2, out_of_range, 1), InvalidArgument);

  EXPECT_THROW(MixedCode("bad", 2, 3, table, 1), InvalidArgument);  // size
}

TEST(MixedCode, HandMadeCodeRepairsAcrossMixedNodes) {
  // 2 nodes x 2 rows: node 0 = {d0, d1}, node 1 = {p01, p0}: losing either
  // node is recoverable.
  std::vector<MixedCode::Element> table(4);
  table[0].info = 0;
  table[1].info = 1;
  table[2].is_parity = true;
  table[2].terms = {{0, 1}, {1, 1}};
  table[3].is_parity = true;
  table[3].terms = {{0, 1}};
  MixedCode code("mini", 2, 2, table, 1);
  roundtrip(code, {0});
  roundtrip(code, {1});
  EXPECT_FALSE(code.can_repair(std::vector<int>{0, 1}));
}

TEST(Xcode, RejectsBadParameters) {
  EXPECT_THROW(make_xcode(4), InvalidArgument);
  EXPECT_THROW(make_xcode(3), InvalidArgument);
}

}  // namespace
}  // namespace approx::codes
