// RS and LRC constructions: parameterized MDS/tolerance sweeps over the
// full evaluation space, prefix property, locality, update-cost formulas.
#include <gtest/gtest.h>

#include <algorithm>

#include "codes/code_family.h"
#include "common/error.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/verify.h"

namespace approx::codes {
namespace {

// ---------------------------------------------------------------------------
// RS
// ---------------------------------------------------------------------------

class RsMdsTest : public testing::TestWithParam<int> {};

TEST_P(RsMdsTest, IsMds) {
  const int k = GetParam();
  for (int m = 1; m <= 3; ++m) {
    auto code = make_rs(k, m);
    EXPECT_TRUE(tolerates_all(*code, m)) << "k=" << k << " m=" << m;
    const auto counterexample = first_unrepairable(*code, m + 1);
    EXPECT_TRUE(counterexample.has_value()) << "k=" << k << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(EvalSweep, RsMdsTest,
                         testing::Values(2, 3, 4, 5, 7, 9, 11, 13, 15, 17),
                         [](const auto& in) {
                           return "k" + std::to_string(in.param);
                         });

TEST(Rs, PrefixProperty) {
  for (const int k : {4, 9, 17}) {
    auto full = make_rs(k, 3);
    for (int m = 1; m < 3; ++m) {
      auto prefix = make_rs(k, m);
      for (int p = 0; p < m; ++p) {
        const auto& a = prefix->parity_terms(k + p, 0);
        const auto& b = full->parity_terms(k + p, 0);
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) {
          EXPECT_EQ(a[i].info, b[i].info);
          EXPECT_EQ(a[i].coeff, b[i].coeff);
        }
      }
    }
  }
}

TEST(Rs, FamilySlicesShareTheSameGenerator) {
  auto full = family_make(Family::RS, 8, 3);
  auto local = family_make(Family::RS, 8, 1);
  const auto& a = local->parity_terms(8, 0);
  const auto& b = full->parity_terms(8, 0);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].coeff, b[i].coeff);
  }
}

TEST(Rs, ParameterValidation) {
  EXPECT_THROW(make_rs(0, 2), InvalidArgument);
  EXPECT_THROW(make_rs(-1, 2), InvalidArgument);
  EXPECT_THROW(make_rs(254, 3), InvalidArgument);
  EXPECT_NO_THROW(make_rs(250, 3));
}

TEST(Rs, UpdateCostIsRPlusOne) {
  for (const int k : {4, 9, 15}) {
    for (int m = 1; m <= 3; ++m) {
      auto code = make_rs(k, m);
      EXPECT_DOUBLE_EQ(code->avg_single_write_cost(), m + 1.0);
    }
  }
}

TEST(XmdsFamily, FirstRowIsXorEverywhere) {
  for (const int k : {3, 8, 17}) {
    auto code = make_mds_with_xor_row(k, 3);
    const auto& row = code->parity_terms(k, 0);
    EXPECT_EQ(static_cast<int>(row.size()), k);
    for (const auto& t : row) EXPECT_EQ(t.coeff, 1);
  }
}

class XmdsTest : public testing::TestWithParam<int> {};

TEST_P(XmdsTest, EveryPrefixIsMds) {
  const int k = GetParam();
  for (int m = 1; m <= 3; ++m) {
    auto code = family_make(Family::LRC, k, m);
    EXPECT_TRUE(tolerates_all(*code, m)) << "k=" << k << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(EvalSweep, XmdsTest, testing::Values(5, 7, 9, 11, 13, 15, 17),
                         [](const auto& in) {
                           return "k" + std::to_string(in.param);
                         });

// ---------------------------------------------------------------------------
// LRC
// ---------------------------------------------------------------------------

TEST(LrcGroups, BalancedContiguousSplit) {
  // k=7, l=3 -> groups of sizes 3,2,2 covering 0..6 without overlap.
  std::vector<int> all;
  for (int g = 0; g < 3; ++g) {
    const auto members = lrc_group_members(7, 3, g);
    EXPECT_GE(members.size(), 2u);
    EXPECT_LE(members.size(), 3u);
    all.insert(all.end(), members.begin(), members.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  EXPECT_THROW(lrc_group_members(4, 2, 2), InvalidArgument);
  EXPECT_THROW(lrc_group_members(2, 4, 0), InvalidArgument);
}

struct LrcConfig {
  int k, l, r;
};

class LrcToleranceTest : public testing::TestWithParam<LrcConfig> {};

TEST_P(LrcToleranceTest, ToleratesRPlusOne) {
  const auto [k, l, r] = GetParam();
  auto code = make_lrc(k, l, r);
  EXPECT_TRUE(tolerates_all(*code, r + 1));
}

INSTANTIATE_TEST_SUITE_P(
    EvalSweep, LrcToleranceTest,
    testing::Values(LrcConfig{5, 4, 2}, LrcConfig{7, 4, 2}, LrcConfig{7, 6, 2},
                    LrcConfig{9, 4, 2}, LrcConfig{9, 6, 2}, LrcConfig{11, 4, 2},
                    LrcConfig{11, 6, 2}, LrcConfig{13, 4, 2}, LrcConfig{13, 6, 2},
                    LrcConfig{15, 4, 2}, LrcConfig{15, 6, 2}, LrcConfig{17, 4, 2},
                    LrcConfig{17, 6, 2}, LrcConfig{6, 2, 1}, LrcConfig{8, 2, 3}),
    [](const auto& in) {
      return "k" + std::to_string(in.param.k) + "l" + std::to_string(in.param.l) +
             "r" + std::to_string(in.param.r);
    });

TEST(Lrc, SingleDataFailureIsLocal) {
  auto code = make_lrc(12, 4, 2);  // groups of 3
  for (int d = 0; d < 12; ++d) {
    auto plan = code->plan_repair(std::vector<int>{d});
    ASSERT_NE(plan, nullptr);
    // Reads: 2 group partners + 1 local parity.
    EXPECT_EQ(plan->source_nodes.size(), 3u) << "data node " << d;
    const int group = d / 3;
    for (const int src : plan->source_nodes) {
      const bool partner = src >= group * 3 && src < (group + 1) * 3;
      const bool local_parity = src == 12 + group;
      EXPECT_TRUE(partner || local_parity) << "node " << d << " read " << src;
    }
  }
}

TEST(Lrc, LocalParityFailureRebuildsFromGroup) {
  auto code = make_lrc(8, 4, 2);  // groups of 2
  auto plan = code->plan_repair(std::vector<int>{8});  // first local parity
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->source_nodes.size(), 2u);
}

TEST(Lrc, SomePatternsBeyondToleranceStillRepair) {
  // Failures spread across groups are often repairable beyond r+1.
  auto code = make_lrc(8, 4, 2);
  // One data node per group for every group: 4 failures, one per group.
  EXPECT_TRUE(code->can_repair(std::vector<int>{0, 2, 4, 6}));
  // But 4 failures in one group (2 data + local + a global) exceed it.
  EXPECT_FALSE(code->can_repair(std::vector<int>{0, 1, 8, 12}));
}

TEST(Lrc, StorageOverheadAndWriteCost) {
  auto code = make_lrc(8, 4, 2);
  EXPECT_DOUBLE_EQ(code->storage_overhead(), 14.0 / 8.0);
  // Each data element touches 1 local + 2 globals: cost 4 = r + 2.
  EXPECT_DOUBLE_EQ(code->avg_single_write_cost(), 4.0);
}

TEST(Lrc, ParameterValidation) {
  EXPECT_THROW(make_lrc(4, 6, 2), InvalidArgument);
  EXPECT_THROW(make_lrc(0, 1, 1), InvalidArgument);
  EXPECT_THROW(make_lrc(4, 0, 2), InvalidArgument);
  EXPECT_THROW(make_lrc(4, 2, 0), InvalidArgument);
}

}  // namespace
}  // namespace approx::codes
