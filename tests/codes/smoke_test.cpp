// Early smoke coverage: round-trips and tolerance for every base code at
// small parameters.  The deep parameterized suites live in the per-code
// test files.
#include <gtest/gtest.h>

#include "codes/array_codes.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/verify.h"
#include "common/buffer.h"
#include "common/prng.h"

namespace approx::codes {
namespace {

// Fill data nodes, encode, wipe `erased`, repair, compare.
void roundtrip(const LinearCode& code, std::span<const int> erased,
               bool expect_ok, std::uint64_t seed) {
  const std::size_t block = 128;
  StripeBuffers buf(code.total_nodes(),
                    block * static_cast<std::size_t>(code.rows()));
  Rng rng(seed);
  for (int d = 0; d < code.data_nodes(); ++d) {
    auto s = buf.node(d);
    fill_random(s.data(), s.size(), rng);
  }
  auto spans = buf.spans();
  code.encode_blocks(spans, block);

  std::vector<std::vector<std::uint8_t>> original;
  for (int n = 0; n < code.total_nodes(); ++n) {
    original.emplace_back(buf.node(n).begin(), buf.node(n).end());
  }
  for (const int e : erased) buf.clear_node(e);

  auto spans2 = buf.spans();
  const bool ok = code.repair_blocks(spans2, block, erased);
  EXPECT_EQ(ok, expect_ok) << code.name();
  if (ok) {
    for (int n = 0; n < code.total_nodes(); ++n) {
      ASSERT_TRUE(std::equal(buf.node(n).begin(), buf.node(n).end(),
                             original[static_cast<std::size_t>(n)].begin()))
          << code.name() << " node " << n;
    }
  }
}

TEST(SmokeTest, RsRoundtripTriple) {
  auto rs = make_rs(6, 3);
  roundtrip(*rs, std::vector<int>{0, 4, 7}, true, 1);
  EXPECT_TRUE(tolerates_all(*rs, 3));
  EXPECT_FALSE(tolerates_all(*rs, 4));
}

TEST(SmokeTest, EvenoddTolerance) {
  auto eo = make_evenodd(5);
  EXPECT_TRUE(tolerates_all(*eo, 2));
  roundtrip(*eo, std::vector<int>{1, 5}, true, 2);
}

TEST(SmokeTest, StarTolerance) {
  auto star = make_star(5, 3);
  EXPECT_TRUE(tolerates_all(*star, 3));
  roundtrip(*star, std::vector<int>{0, 2, 6}, true, 3);
}

TEST(SmokeTest, TipSearchFindsMdsLayout) {
  auto tip = make_tip(5, 3);
  EXPECT_EQ(tip->data_nodes(), 3);
  EXPECT_TRUE(tolerates_all(*tip, 3));
  roundtrip(*tip, std::vector<int>{0, 1, 2}, true, 4);

  auto tip7 = make_tip(7, 3);
  EXPECT_TRUE(tolerates_all(*tip7, 3));
}

TEST(SmokeTest, LrcToleranceAndLocality) {
  auto lrc = make_lrc(6, 2, 2);
  EXPECT_TRUE(tolerates_all(*lrc, 3));
  // Single data-node repair reads only the local group.
  auto plan = lrc->plan_repair(std::vector<int>{1});
  ASSERT_NE(plan, nullptr);
  EXPECT_LE(plan->source_nodes.size(), 3u);
}

TEST(SmokeTest, XorFirstRowMds) {
  auto code = make_mds_with_xor_row(8, 3);
  // First parity row must be pure XOR.
  for (const auto& t : code->parity_terms(8, 0)) EXPECT_EQ(t.coeff, 1);
  EXPECT_TRUE(tolerates_all(*code, 3));
}

}  // namespace
}  // namespace approx::codes
