// Solver property tests: for randomly generated codes, the plan-based
// repair must agree exactly with ground truth (re-encoding a fresh copy),
// and can_repair must agree with an independent rank computation.
#include <gtest/gtest.h>

#include "codes/linear_code.h"
#include "codes/verify.h"
#include "common/buffer.h"
#include "common/prng.h"
#include "gf/gf256.h"
#include "gf/gf_matrix.h"

namespace approx::codes {
namespace {

// A random systematic code: k data nodes, m parity nodes, `rows` rows,
// sparse random parity term lists (binary or GF coefficients).
std::shared_ptr<LinearCode> random_code(int k, int m, int rows, bool binary,
                                        Rng& rng) {
  std::vector<std::vector<LinearCode::Term>> parity(
      static_cast<std::size_t>(m) * static_cast<std::size_t>(rows));
  for (auto& elem : parity) {
    // Each parity element references 2..k*rows distinct info elements.
    const int terms = 2 + static_cast<int>(rng.below(
                              static_cast<std::uint64_t>(k * rows - 1)));
    std::vector<bool> used(static_cast<std::size_t>(k * rows), false);
    for (int t = 0; t < terms; ++t) {
      const int info = static_cast<int>(rng.below(static_cast<std::uint64_t>(k * rows)));
      if (used[static_cast<std::size_t>(info)]) continue;
      used[static_cast<std::size_t>(info)] = true;
      std::uint8_t coeff = 1;
      if (!binary) {
        coeff = rng.byte();
        if (coeff == 0) coeff = 1;
      }
      elem.push_back({info, coeff});
    }
  }
  return std::make_shared<LinearCode>("fuzz", k, m, rows, std::move(parity), 0);
}

// Independent decodability check: stack surviving element rows as a GF
// matrix and test whether each erased data element's unit vector lies in
// the row space (rank comparison).
bool rank_decodable(const LinearCode& code, const std::vector<int>& erased) {
  const int K = code.info_count();
  std::vector<bool> is_erased(static_cast<std::size_t>(code.total_nodes()), false);
  for (const int e : erased) is_erased[static_cast<std::size_t>(e)] = true;

  std::vector<std::vector<std::uint8_t>> rows;
  for (int n = 0; n < code.total_nodes(); ++n) {
    if (is_erased[static_cast<std::size_t>(n)]) continue;
    for (int r = 0; r < code.rows(); ++r) {
      std::vector<std::uint8_t> row(static_cast<std::size_t>(K), 0);
      if (n < code.data_nodes()) {
        row[static_cast<std::size_t>(info_index(n, r, code.rows()))] = 1;
      } else {
        for (const auto& t : code.parity_terms(n, r)) {
          row[static_cast<std::size_t>(t.info)] =
              static_cast<std::uint8_t>(row[static_cast<std::size_t>(t.info)] ^ t.coeff);
        }
      }
      rows.push_back(std::move(row));
    }
  }
  gf::Matrix survivors(static_cast<int>(rows.size()), K);
  for (int i = 0; i < survivors.rows(); ++i) {
    for (int j = 0; j < K; ++j) {
      survivors.at(i, j) = rows[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  const int base_rank = survivors.rank();

  // Append the erased data unit rows: decodable iff the rank is unchanged.
  std::vector<std::vector<std::uint8_t>> extended = rows;
  for (const int e : erased) {
    if (e >= code.data_nodes()) continue;
    for (int r = 0; r < code.rows(); ++r) {
      std::vector<std::uint8_t> row(static_cast<std::size_t>(K), 0);
      row[static_cast<std::size_t>(info_index(e, r, code.rows()))] = 1;
      extended.push_back(std::move(row));
    }
  }
  gf::Matrix with_targets(static_cast<int>(extended.size()), K);
  for (int i = 0; i < with_targets.rows(); ++i) {
    for (int j = 0; j < K; ++j) {
      with_targets.at(i, j) =
          extended[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
    }
  }
  return with_targets.rank() == base_rank;
}

class SolverFuzz : public testing::TestWithParam<bool> {};

TEST_P(SolverFuzz, CanRepairAgreesWithRankCheck) {
  const bool binary = GetParam();
  Rng rng(binary ? 101 : 202);
  for (int trial = 0; trial < 40; ++trial) {
    const int k = 2 + static_cast<int>(rng.below(4));
    const int m = 1 + static_cast<int>(rng.below(3));
    const int rows = 1 + static_cast<int>(rng.below(4));
    auto code = random_code(k, m, rows, binary, rng);
    code->set_plan_cache_enabled(false);
    const int n = code->total_nodes();
    const int f = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(
                          std::min(3, n - 1))));
    std::vector<int> erased;
    while (static_cast<int>(erased.size()) < f) {
      const int e = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (std::find(erased.begin(), erased.end(), e) == erased.end()) {
        erased.push_back(e);
      }
    }
    const bool solver_says = code->can_repair(erased);
    // Note: the solver requires erased *parity* elements to be recomputable
    // too; the rank check covers data only, so solver true => rank true,
    // and when every erased node is a data node they must agree exactly.
    bool all_data = true;
    for (const int e : erased) all_data &= e < k;
    const bool rank_says = rank_decodable(*code, erased);
    if (all_data) {
      EXPECT_EQ(solver_says, rank_says) << "trial " << trial;
    } else if (solver_says) {
      EXPECT_TRUE(rank_says) << "trial " << trial;
    }
  }
}

TEST_P(SolverFuzz, RepairedBuffersMatchGroundTruth) {
  const bool binary = GetParam();
  Rng rng(binary ? 303 : 404);
  int repaired = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const int k = 2 + static_cast<int>(rng.below(4));
    const int m = 1 + static_cast<int>(rng.below(3));
    const int rows = 1 + static_cast<int>(rng.below(3));
    auto code = random_code(k, m, rows, binary, rng);
    code->set_plan_cache_enabled(false);

    const std::size_t block = 24;
    StripeBuffers buf(code->total_nodes(),
                      block * static_cast<std::size_t>(rows));
    for (int d = 0; d < k; ++d) {
      auto s = buf.node(d);
      fill_random(s.data(), s.size(), rng);
    }
    auto spans = buf.spans();
    code->encode_blocks(spans, block);
    std::vector<std::vector<std::uint8_t>> want;
    for (int n = 0; n < code->total_nodes(); ++n) {
      want.emplace_back(buf.node(n).begin(), buf.node(n).end());
    }

    const int n = code->total_nodes();
    std::vector<int> erased = {static_cast<int>(rng.below(static_cast<std::uint64_t>(n)))};
    if (rng.below(2) == 0 && n > 1) {
      erased.push_back((erased[0] + 1) % n);
    }
    for (const int e : erased) buf.clear_node(e);
    auto spans2 = buf.spans();
    if (!code->repair_blocks(spans2, block, erased)) continue;  // pattern too hard
    ++repaired;
    for (int node = 0; node < n; ++node) {
      ASSERT_TRUE(std::equal(buf.node(node).begin(), buf.node(node).end(),
                             want[static_cast<std::size_t>(node)].begin()))
          << "trial " << trial << " node " << node;
    }
  }
  EXPECT_GT(repaired, 20);  // the fuzz must actually exercise repairs
}

INSTANTIATE_TEST_SUITE_P(Fields, SolverFuzz, testing::Values(true, false),
                         [](const auto& in) {
                           return in.param ? "binary" : "gf256";
                         });

}  // namespace
}  // namespace approx::codes
