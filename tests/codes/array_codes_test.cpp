// EVENODD / STAR / TIP array codes: geometry, exhaustive tolerance over the
// full evaluation sweep, update-cost closed forms, parameter gating.
#include <gtest/gtest.h>

#include "codes/array_codes.h"
#include "codes/primes.h"
#include "codes/code_family.h"
#include "common/error.h"
#include "codes/verify.h"

namespace approx::codes {
namespace {

class StarSweep : public testing::TestWithParam<int> {};

TEST_P(StarSweep, AllPrefixesTolerateTheirParityCount) {
  const int p = GetParam();
  for (int m = 1; m <= 3; ++m) {
    auto code = make_star(p, m);
    EXPECT_EQ(code->data_nodes(), p);
    EXPECT_EQ(code->rows(), p - 1);
    EXPECT_TRUE(code->is_binary());
    EXPECT_TRUE(tolerates_all(*code, m)) << "p=" << p << " m=" << m;
    EXPECT_TRUE(first_unrepairable(*code, m + 1).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, StarSweep, testing::Values(3, 5, 7, 11, 13, 17),
                         [](const auto& in) {
                           return "p" + std::to_string(in.param);
                         });

class TipSweep : public testing::TestWithParam<int> {};

TEST_P(TipSweep, AllPrefixesTolerateTheirParityCount) {
  const int p = GetParam();
  for (int m = 1; m <= 3; ++m) {
    auto code = make_tip(p, m);
    EXPECT_EQ(code->data_nodes(), p - 2);
    EXPECT_EQ(code->rows(), p - 1);
    EXPECT_TRUE(tolerates_all(*code, m)) << "p=" << p << " m=" << m;
  }
}

INSTANTIATE_TEST_SUITE_P(Primes, TipSweep, testing::Values(5, 7, 11, 13, 17, 19),
                         [](const auto& in) {
                           return "p" + std::to_string(in.param);
                         });

TEST(Evenodd, MatchesStarPrefix) {
  auto eo = make_evenodd(7);
  auto star2 = make_star(7, 2);
  EXPECT_EQ(eo->parity_nodes(), 2);
  for (int row = 0; row < eo->rows(); ++row) {
    for (int pn = 7; pn < 9; ++pn) {
      const auto& a = eo->parity_terms(pn, row);
      const auto& b = star2->parity_terms(pn, row);
      ASSERT_EQ(a.size(), b.size());
    }
  }
}

TEST(Evenodd, HorizontalParityIsPlainRowXor) {
  auto eo = make_evenodd(5);
  for (int row = 0; row < 4; ++row) {
    const auto& terms = eo->parity_terms(5, row);
    EXPECT_EQ(terms.size(), 5u);  // one cell per data column
    for (const auto& t : terms) {
      EXPECT_EQ(t.info % 4, row);  // all in the same row
      EXPECT_EQ(t.coeff, 1);
    }
  }
}

TEST(Evenodd, AdjusterCellsAppearInEveryDiagonalElement) {
  // Cells on the line i + j = p-1 (mod p) belong to every diagonal parity
  // element; all other cells to exactly one.
  const int p = 5;
  auto eo = make_evenodd(p);
  const int rows = p - 1;
  std::vector<int> appearance(static_cast<std::size_t>(p * rows), 0);
  for (int l = 0; l < rows; ++l) {
    for (const auto& t : eo->parity_terms(p + 1, l)) {
      ++appearance[static_cast<std::size_t>(t.info)];
    }
  }
  for (int j = 0; j < p; ++j) {
    for (int i = 0; i < rows; ++i) {
      const int info = j * rows + i;
      const bool adjuster = (i + j) % p == p - 1;
      if (adjuster) {
        // Appears in all elements except its own cancelled one -> p-2 times
        // after XOR cancellation with the direct entry, or p-1 times when
        // no direct entry exists.  Either way: more than once.
        EXPECT_GT(appearance[static_cast<std::size_t>(info)], 1) << i << "," << j;
      } else {
        EXPECT_EQ(appearance[static_cast<std::size_t>(info)], 1) << i << "," << j;
      }
    }
  }
}

TEST(Star, UpdateCostMatchesPaperFormula) {
  // Table 3: STAR single-write cost = 6 - 4/p.
  for (const int p : {5, 7, 11, 13, 17}) {
    auto star = make_star(p, 3);
    EXPECT_NEAR(star->avg_single_write_cost(), 6.0 - 4.0 / p, 1e-12) << p;
  }
}

TEST(Evenodd, UpdateCostMatchesKnownFormula) {
  for (const int p : {5, 7, 13}) {
    auto eo = make_evenodd(p);
    EXPECT_NEAR(eo->avg_single_write_cost(), 4.0 - 2.0 / p, 1e-12) << p;
  }
}

TEST(Tip, StorageGeometryMatchesPaper) {
  // Overhead (p+1)/(p-2).
  for (const int p : {5, 7, 11, 13, 17, 19}) {
    auto tip = make_tip(p, 3);
    EXPECT_EQ(tip->total_nodes(), p + 1);
    EXPECT_NEAR(tip->storage_overhead(),
                static_cast<double>(p + 1) / static_cast<double>(p - 2), 1e-12);
  }
}

TEST(ParameterGates, MatchPaperSlashCells) {
  // Table 6 "/" cells: STAR at k=9,15; TIP at k=7,13.
  EXPECT_TRUE(star_supports(5));
  EXPECT_TRUE(star_supports(7));
  EXPECT_FALSE(star_supports(9));
  EXPECT_TRUE(star_supports(11));
  EXPECT_TRUE(star_supports(13));
  EXPECT_FALSE(star_supports(15));
  EXPECT_TRUE(star_supports(17));

  EXPECT_TRUE(tip_supports(5));
  EXPECT_FALSE(tip_supports(7));
  EXPECT_TRUE(tip_supports(9));
  EXPECT_TRUE(tip_supports(11));
  EXPECT_FALSE(tip_supports(13));
  EXPECT_TRUE(tip_supports(15));
  EXPECT_TRUE(tip_supports(17));
}

TEST(ParameterGates, ConstructorsRejectInvalidPrimes) {
  EXPECT_THROW(make_star(4, 3), InvalidArgument);
  EXPECT_THROW(make_star(9, 3), InvalidArgument);
  EXPECT_THROW(make_evenodd(6), InvalidArgument);
  EXPECT_THROW(make_tip(4, 3), InvalidArgument);
  EXPECT_THROW(make_tip(3, 3), InvalidArgument);  // p >= 5 for TIP
  EXPECT_THROW(make_star(5, 4), InvalidArgument);
  EXPECT_THROW(make_star(5, 0), InvalidArgument);
}

TEST(FamilyRegistry, RowsAndSupport) {
  EXPECT_EQ(family_rows(Family::RS, 9), 1);
  EXPECT_EQ(family_rows(Family::LRC, 9), 1);
  EXPECT_EQ(family_rows(Family::STAR, 7), 6);
  EXPECT_EQ(family_rows(Family::TIP, 5), 6);  // p = 7 -> 6 rows
  EXPECT_EQ(family_name(Family::STAR), "STAR");
  EXPECT_THROW(family_make(Family::STAR, 9, 3), InvalidArgument);
  auto same = family_make(Family::TIP, 5, 2);
  EXPECT_EQ(same.get(), family_make(Family::TIP, 5, 2).get());  // memoized
}

class RdpSweep : public testing::TestWithParam<int> {};

TEST_P(RdpSweep, ToleratesDoubleFailures) {
  const int p = GetParam();
  auto code = make_rdp(p);
  EXPECT_EQ(code->data_nodes(), p - 1);
  EXPECT_EQ(code->parity_nodes(), 2);
  EXPECT_EQ(code->rows(), p - 1);
  EXPECT_TRUE(code->is_binary());
  EXPECT_TRUE(tolerates_all(*code, 2)) << "p=" << p;
  EXPECT_TRUE(first_unrepairable(*code, 3).has_value());
}

INSTANTIATE_TEST_SUITE_P(Primes, RdpSweep, testing::Values(3, 5, 7, 11, 13),
                         [](const auto& in) {
                           return "p" + std::to_string(in.param);
                         });

TEST(Rdp, DiagonalChainsRunThroughRowParity) {
  // RDP's defining property: diagonal parity covers the row-parity column,
  // which our expansion turns into data terms - so diagonal term lists are
  // longer than EVENODD's plain diagonals on non-degenerate rows.
  auto rdp = make_rdp(5);
  std::size_t rdp_terms = 0;
  for (int row = 0; row < rdp->rows(); ++row) {
    rdp_terms += rdp->parity_terms(5, row).size();  // node 5 = diagonal parity
  }
  EXPECT_GT(rdp_terms, static_cast<std::size_t>(rdp->rows() * (rdp->data_nodes() - 1)));
  EXPECT_THROW(make_rdp(4), InvalidArgument);
}

TEST(Primes, Helpers) {
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(17));
  EXPECT_FALSE(is_prime(1));
  EXPECT_FALSE(is_prime(15));
  EXPECT_EQ(next_prime(14), 17);
  EXPECT_EQ(next_prime(17), 17);
  EXPECT_EQ(next_prime(0), 2);
}

}  // namespace
}  // namespace approx::codes
