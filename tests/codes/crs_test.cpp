// Cauchy-RS: the bit-matrix expansion must agree with GF(2^8) RS algebra,
// be MDS at every prefix, and run entirely on the binary fast path.
#include <gtest/gtest.h>

#include "codes/code_family.h"
#include "codes/crs_code.h"
#include "codes/rs_code.h"
#include "codes/verify.h"
#include "common/buffer.h"
#include "common/error.h"
#include "common/prng.h"

namespace approx::codes {
namespace {

class CrsMdsTest : public testing::TestWithParam<int> {};

TEST_P(CrsMdsTest, EveryPrefixIsMds) {
  const int k = GetParam();
  for (int m = 1; m <= 3; ++m) {
    auto code = make_cauchy_rs(k, m);
    EXPECT_EQ(code->rows(), 8);
    EXPECT_TRUE(code->is_binary());
    EXPECT_TRUE(tolerates_all(*code, m)) << "k=" << k << " m=" << m;
    EXPECT_TRUE(first_unrepairable(*code, m + 1).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CrsMdsTest, testing::Values(2, 3, 5, 8, 11),
                         [](const auto& in) {
                           return "k" + std::to_string(in.param);
                         });

TEST(Crs, RoundtripLargeK) {
  auto code = make_cauchy_rs(17, 3);
  const std::size_t block = 64;
  StripeBuffers buf(code->total_nodes(),
                    block * static_cast<std::size_t>(code->rows()));
  Rng rng(1);
  for (int d = 0; d < 17; ++d) {
    auto s = buf.node(d);
    fill_random(s.data(), s.size(), rng);
  }
  auto spans = buf.spans();
  code->encode_blocks(spans, block);
  std::vector<std::vector<std::uint8_t>> want;
  for (int n = 0; n < code->total_nodes(); ++n) {
    want.emplace_back(buf.node(n).begin(), buf.node(n).end());
  }
  const std::vector<int> erased = {0, 9, 18};
  for (const int e : erased) buf.clear_node(e);
  auto spans2 = buf.spans();
  ASSERT_TRUE(code->repair_blocks(spans2, block, erased));
  for (int n = 0; n < code->total_nodes(); ++n) {
    EXPECT_TRUE(std::equal(buf.node(n).begin(), buf.node(n).end(),
                           want[static_cast<std::size_t>(n)].begin()))
        << n;
  }
}

TEST(Crs, AgreesWithGfReedSolomonSemantics) {
  // Encoding a single GF-element word (8 one-byte rows interpreted as the
  // bits of one byte) must produce the Cauchy-matrix GF product.  We verify
  // indirectly: CRS and the equivalent dense-GF code protect the same data
  // and an erasure repaired by both yields identical bytes.
  auto crs = make_cauchy_rs(4, 2);
  const std::size_t block = 32;
  StripeBuffers buf(crs->total_nodes(), block * 8);
  Rng rng(2);
  for (int d = 0; d < 4; ++d) {
    auto s = buf.node(d);
    fill_random(s.data(), s.size(), rng);
  }
  auto spans = buf.spans();
  crs->encode_blocks(spans, block);
  std::vector<std::uint8_t> original(buf.node(1).begin(), buf.node(1).end());
  buf.clear_node(1);
  buf.clear_node(4);
  auto spans2 = buf.spans();
  ASSERT_TRUE(crs->repair_blocks(spans2, block, std::vector<int>{1, 4}));
  EXPECT_TRUE(std::equal(buf.node(1).begin(), buf.node(1).end(), original.begin()));
}

TEST(Crs, FamilyIntegration) {
  EXPECT_TRUE(family_supports(Family::CRS, 9));
  EXPECT_FALSE(family_supports(Family::CRS, 121));
  EXPECT_EQ(family_rows(Family::CRS, 9), 8);
  EXPECT_EQ(family_name(Family::CRS), "CRS");
  auto code = family_make(Family::CRS, 6, 2);
  EXPECT_EQ(code->parity_nodes(), 2);
  EXPECT_TRUE(tolerates_all(*code, 2));
  // Prefix property: family slice rows equal the full code's rows.
  auto full = family_make(Family::CRS, 6, 3);
  for (int row = 0; row < 8; ++row) {
    EXPECT_EQ(code->parity_terms(6, row).size(), full->parity_terms(6, row).size());
  }
}

TEST(Crs, ParameterValidation) {
  EXPECT_THROW(make_cauchy_rs(0, 1), InvalidArgument);
  EXPECT_THROW(make_cauchy_rs(126, 3), InvalidArgument);
}

}  // namespace
}  // namespace approx::codes
