// NodeView geometry, partial parity encoding and targeted schedule
// execution (apply_for_element).
#include <gtest/gtest.h>

#include "codes/array_codes.h"
#include "common/error.h"
#include "codes/rs_code.h"
#include "common/buffer.h"
#include "common/prng.h"

namespace approx::codes {
namespace {

TEST(NodeView, FullAndRangeViews) {
  StripeBuffers buf(1, 64);
  auto node = buf.node(0);
  const auto full = full_view(node, 16);  // 4 elements of 16 bytes
  EXPECT_EQ(full.data, node.data());
  EXPECT_EQ(full.len, 16u);
  EXPECT_EQ(full.stride, 16u);
  EXPECT_EQ(full.elem(3), node.data() + 48);

  const auto range = range_view(node, 16, 4, 8);  // bytes [4,12) of each elem
  EXPECT_EQ(range.data, node.data() + 4);
  EXPECT_EQ(range.len, 8u);
  EXPECT_EQ(range.stride, 16u);
  EXPECT_EQ(range.elem(2), node.data() + 36);
}

TEST(EncodeParityNodes, SubsetLeavesOthersUntouched) {
  auto star = make_star(5, 3);
  const std::size_t block = 32;
  StripeBuffers buf(star->total_nodes(),
                    block * static_cast<std::size_t>(star->rows()));
  Rng rng(1);
  for (int d = 0; d < 5; ++d) {
    auto s = buf.node(d);
    fill_random(s.data(), s.size(), rng);
  }
  // Poison all parity nodes, then encode only node 6 (diagonal).
  for (int p = 5; p < 8; ++p) {
    auto s = buf.node(p);
    std::fill(s.begin(), s.end(), std::uint8_t{0xEE});
  }
  std::vector<NodeView> views;
  for (int n = 0; n < 8; ++n) views.push_back(full_view(buf.node(n), block));
  star->encode_parity_nodes(views, std::vector<int>{6});
  // Node 6 recomputed, nodes 5 and 7 still poisoned.
  bool node6_changed = false;
  for (const auto b : buf.node(6)) node6_changed |= b != 0xEE;
  EXPECT_TRUE(node6_changed);
  for (const int p : {5, 7}) {
    for (const auto b : buf.node(p)) ASSERT_EQ(b, 0xEE) << "node " << p;
  }
  EXPECT_THROW(star->encode_parity_nodes(views, std::vector<int>{2}),
               InvalidArgument);  // not a parity node
}

TEST(ApplyForElement, RebuildsOneElementOnly) {
  auto star = make_star(7, 3);
  const std::size_t block = 24;
  StripeBuffers buf(star->total_nodes(),
                    block * static_cast<std::size_t>(star->rows()));
  Rng rng(2);
  for (int d = 0; d < 7; ++d) {
    auto s = buf.node(d);
    fill_random(s.data(), s.size(), rng);
  }
  auto spans = buf.spans();
  star->encode_blocks(spans, block);
  std::vector<std::uint8_t> want(buf.node(2).begin(), buf.node(2).end());

  const std::vector<int> erased = {2, 4};
  auto plan = star->plan_repair(erased);
  ASSERT_NE(plan, nullptr);
  for (const int e : erased) buf.clear_node(e);

  std::vector<NodeView> views;
  for (int n = 0; n < star->total_nodes(); ++n) {
    views.push_back(full_view(buf.node(n), block));
  }
  const int executed = star->apply_for_element(*plan, views, {2, 3});
  EXPECT_GE(executed, 1);
  EXPECT_LT(executed, static_cast<int>(plan->targets.size()));
  // Element (2,3) is correct even though node 4 is still mostly zero.
  EXPECT_TRUE(std::equal(buf.node(2).begin() + 3 * 24, buf.node(2).begin() + 4 * 24,
                         want.begin() + 3 * 24));
}

TEST(ApplyForElement, UnknownElementIsNoop) {
  auto rs = make_rs(4, 2);
  auto plan = rs->plan_repair(std::vector<int>{1});
  ASSERT_NE(plan, nullptr);
  StripeBuffers buf(6, 16);
  std::vector<NodeView> views;
  for (int n = 0; n < 6; ++n) views.push_back(full_view(buf.node(n), 16));
  EXPECT_EQ(rs->apply_for_element(*plan, views, {3, 0}), 0);  // not a target
}

}  // namespace
}  // namespace approx::codes
