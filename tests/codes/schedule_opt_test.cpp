// Schedule-compiler suite: structural invariants of compiled XOR programs,
// byte-identical naive-vs-compiled execution, blocked-execution equivalence
// on odd lengths, the dst-aliasing contract, and a golden XOR-count pin for
// a fixed CRS matrix (the CSE win the optimizer exists for).
#include "codes/schedule_opt.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "codes/array_codes.h"
#include "codes/crs_code.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "codes/verify.h"
#include "common/buffer.h"
#include "common/prng.h"

namespace approx::codes {
namespace {

constexpr std::uint64_t kSeed = 0xC0DE5EEDull;

// Encode statements of a code (dst = parity element, sources = data terms),
// the same construction LinearCode::encode_program uses.
std::vector<RepairPlan::Target> encode_stmts(const LinearCode& code) {
  std::vector<RepairPlan::Target> stmts;
  for (int p = code.data_nodes(); p < code.total_nodes(); ++p) {
    for (int row = 0; row < code.rows(); ++row) {
      RepairPlan::Target t;
      t.elem = {p, row};
      for (const auto& term : code.parity_terms(p, row)) {
        t.sources.push_back(
            {ElemRef{term.info / code.rows(), term.info % code.rows()},
             term.coeff});
      }
      stmts.push_back(std::move(t));
    }
  }
  return stmts;
}

// Every temp is defined before use; every program-written element is read
// only after its own statement ran (the dependency order repair schedules
// rely on).
void check_program_order(const XorProgram& prog) {
  std::set<std::pair<int, int>> all_dsts;
  for (const auto& s : prog.stmts) {
    if (s.dst.node != XorProgram::kTempNode) {
      all_dsts.insert({s.dst.node, s.dst.row});
    }
  }
  std::set<int> temps_defined;
  std::set<std::pair<int, int>> elems_written;
  for (const auto& s : prog.stmts) {
    for (const auto& src : s.sources) {
      if (src.ref.node == XorProgram::kTempNode) {
        EXPECT_TRUE(temps_defined.contains(src.ref.row))
            << "temp " << src.ref.row << " read before definition";
      } else if (all_dsts.contains({src.ref.node, src.ref.row})) {
        EXPECT_TRUE(elems_written.contains({src.ref.node, src.ref.row}))
            << "element (" << src.ref.node << "," << src.ref.row
            << ") read before its rebuilding statement";
      }
    }
    if (s.dst.node == XorProgram::kTempNode) {
      temps_defined.insert(s.dst.row);
    } else {
      elems_written.insert({s.dst.node, s.dst.row});
    }
  }
}

TEST(ScheduleCompile, CrsEncodeSharesSubexpressions) {
  auto code = make_cauchy_rs(6, 3);
  auto prog = compile_schedule(encode_stmts(*code));
  ASSERT_NE(prog, nullptr);
  EXPECT_GT(prog->temp_count, 0);
  EXPECT_LT(prog->compiled_xors, prog->naive_xors);
  check_program_order(*prog);
}

// Golden pin for a fixed CRS matrix: the Cauchy layout of make_cauchy_rs is
// frozen, and greedy CSE with deterministic tie-breaking always produces the
// same program, so the counts are exact.  A change here means the optimizer
// (or the CRS construction) changed behavior - update deliberately.
TEST(ScheduleCompile, GoldenCrsXorCounts) {
  auto code = make_cauchy_rs(4, 2);
  auto prog = compile_schedule(encode_stmts(*code));
  ASSERT_NE(prog, nullptr);
  EXPECT_EQ(prog->naive_xors, 219u);
  EXPECT_EQ(prog->compiled_xors, 107u);  // 51% fewer XOR passes
  EXPECT_EQ(prog->temp_count, 41);
  EXPECT_LT(prog->compiled_xors, prog->naive_xors);
}

TEST(ScheduleCompile, SingleStatementCompilesVerbatim) {
  auto code = make_cauchy_rs(4, 2);
  auto stmts = encode_stmts(*code);
  stmts.resize(1);
  auto prog = compile_schedule(stmts);
  EXPECT_EQ(prog->temp_count, 0);
  EXPECT_EQ(prog->stmts.size(), 1u);
  EXPECT_EQ(prog->compiled_xors, prog->naive_xors);
}

TEST(ScheduleCompile, DensePairCapSkipsCse) {
  // Two statements sharing 400 operands: ~80k operand pairs, past the CSE
  // cap, so the program must come out verbatim (blocking still applies).
  std::vector<RepairPlan::Target> stmts(2);
  stmts[0].elem = {500, 0};
  stmts[1].elem = {501, 0};
  for (int i = 0; i < 400; ++i) {
    stmts[0].sources.push_back({ElemRef{i, 0}, 1});
    stmts[1].sources.push_back({ElemRef{i, 0}, 1});
  }
  auto prog = compile_schedule(stmts);
  EXPECT_EQ(prog->temp_count, 0);
  EXPECT_EQ(prog->compiled_xors, prog->naive_xors);
}

TEST(ScheduleCompile, RepairPlanDependencyOrderSurvives) {
  auto code = make_star(7, 3);
  for (const auto& erased :
       {std::vector<int>{0, 1}, {0, 1, 2}, {2, 7, 8}, {7, 8, 9}}) {
    auto plan = code->plan_repair(erased);
    ASSERT_NE(plan, nullptr);
    auto prog = compile_schedule(plan->targets);
    check_program_order(*prog);
  }
}

// Execute a program twice - default block size vs a tiny one that forces
// many partial blocks on an odd length - and require identical bytes.
TEST(ScheduleRun, BlockedExecutionMatchesDefault) {
  auto code = make_cauchy_rs(5, 3);
  const std::size_t len = 333;  // odd: exercises partial-block tails
  const std::size_t node_bytes = len * static_cast<std::size_t>(code->rows());
  StripeBuffers a(code->total_nodes(), node_bytes);
  Rng rng(kSeed);
  for (int n = 0; n < code->total_nodes(); ++n) {
    auto s = a.node(n);
    fill_random(s.data(), s.size(), rng);
  }
  StripeBuffers b = a;

  auto prog = compile_schedule(encode_stmts(*code));
  const auto views = [&](StripeBuffers& buf) {
    std::vector<NodeView> v;
    for (int n = 0; n < code->total_nodes(); ++n) {
      v.push_back(full_view(buf.node(n), len));
    }
    return v;
  };
  auto va = views(a);
  auto vb = views(b);
  run_program(*prog, va, len);
  run_program(*prog, vb, len, /*block_bytes=*/7);
  for (int n = 0; n < code->total_nodes(); ++n) {
    ASSERT_EQ(0, std::memcmp(a.node(n).data(), b.node(n).data(), node_bytes))
        << "node " << n;
  }
}

// dst may alias a source (the kernel gather contract): a statement of the
// form "x = x ^ y" must behave like an in-place accumulate.
TEST(ScheduleRun, DstAliasingSourceIsInPlaceAccumulate) {
  const std::size_t len = 97;
  std::vector<std::uint8_t> x(len), y(len), expect(len);
  Rng rng(kSeed);
  fill_random(x.data(), len, rng);
  fill_random(y.data(), len, rng);
  for (std::size_t i = 0; i < len; ++i) {
    expect[i] = static_cast<std::uint8_t>(x[i] ^ y[i]);
  }

  std::vector<RepairPlan::Target> stmts(1);
  stmts[0].elem = {0, 0};
  stmts[0].sources = {{ElemRef{0, 0}, 1}, {ElemRef{1, 0}, 1}};
  auto prog = compile_schedule(stmts);
  const NodeView views[] = {{x.data(), len, len}, {y.data(), len, len}};
  run_program(*prog, views, len);
  EXPECT_EQ(0, std::memcmp(x.data(), expect.data(), len));
}

// Naive and compiled execution must be byte-identical for every code family
// and every erasure pattern up to the fault tolerance.
template <typename CodePtr>
void diff_all_patterns(const CodePtr& code, const std::string& name) {
  const std::size_t len = 200;  // odd vector multiple: main loops + tails
  const std::size_t node_bytes = len * static_cast<std::size_t>(code->rows());

  StripeBuffers naive(code->total_nodes(), node_bytes);
  Rng rng(kSeed);
  for (int n = 0; n < code->total_nodes(); ++n) {
    auto s = naive.node(n);
    fill_random(s.data(), s.size(), rng);
  }
  StripeBuffers compiled = naive;

  const auto encode_with = [&](StripeBuffers& buf, bool opt) {
    code->set_schedule_opt_enabled(opt);
    auto spans = buf.spans();
    code->encode_blocks(spans, len);
  };
  encode_with(naive, false);
  encode_with(compiled, true);
  for (int n = 0; n < code->total_nodes(); ++n) {
    ASSERT_EQ(0, std::memcmp(naive.node(n).data(), compiled.node(n).data(),
                             node_bytes))
        << name << " encode differs on node " << n;
  }

  const StripeBuffers pristine = naive;
  for (int failures = 1; failures <= code->fault_tolerance(); ++failures) {
    for_each_subset(
        code->total_nodes(), failures,
        [&](const std::vector<int>& erased) {
          SCOPED_TRACE(name);
          const auto repair_with = [&](StripeBuffers& buf, bool opt) {
            code->set_schedule_opt_enabled(opt);
            for (const int e : erased) {
              auto s = buf.node(e);
              std::memset(s.data(), 0xEE, s.size());
            }
            auto spans = buf.spans();
            EXPECT_TRUE(code->repair_blocks(spans, len, erased));
          };
          repair_with(naive, false);
          repair_with(compiled, true);
          for (int n = 0; n < code->total_nodes(); ++n) {
            EXPECT_EQ(0, std::memcmp(naive.node(n).data(),
                                     compiled.node(n).data(), node_bytes))
                << "node " << n << " differs after repair";
            EXPECT_EQ(0, std::memcmp(naive.node(n).data(),
                                     pristine.node(n).data(), node_bytes))
                << "node " << n << " differs from pristine";
          }
          return true;
        });
  }
  code->set_schedule_opt_enabled(true);
}

TEST(ScheduleDiff, Crs) { diff_all_patterns(make_cauchy_rs(4, 2), "CRS(4,2)"); }
TEST(ScheduleDiff, Star) { diff_all_patterns(make_star(5, 3), "STAR(5,3)"); }
TEST(ScheduleDiff, Evenodd) { diff_all_patterns(make_evenodd(5), "EVENODD(5)"); }
TEST(ScheduleDiff, Rs) { diff_all_patterns(make_rs(5, 3), "RS(5,3)"); }
TEST(ScheduleDiff, Lrc) { diff_all_patterns(make_lrc(4, 2, 2), "LRC(4,2,2)"); }

TEST(ScheduleToggle, DefaultOnAndSettable) {
  auto code = make_cauchy_rs(4, 2);
  // Compiled by default; APPROX_SCHEDULE=naive (the CI schedule matrix)
  // flips the process-wide default.
  const char* env = std::getenv("APPROX_SCHEDULE");
  const bool want = env == nullptr || std::string_view(env) != "naive";
  EXPECT_EQ(want, code->schedule_opt_enabled());
  code->set_schedule_opt_enabled(false);
  EXPECT_FALSE(code->schedule_opt_enabled());
  code->set_schedule_opt_enabled(true);
  EXPECT_TRUE(code->schedule_opt_enabled());
}

}  // namespace
}  // namespace approx::codes
