// The verification helpers themselves (the tests' own measuring stick).
#include <gtest/gtest.h>

#include <set>

#include "codes/rs_code.h"
#include "codes/verify.h"
#include "common/error.h"

namespace approx::codes {
namespace {

TEST(ForEachSubset, EnumeratesExactlyOnce) {
  std::set<std::vector<int>> seen;
  for_each_subset(6, 3, [&](const std::vector<int>& s) {
    EXPECT_TRUE(seen.insert(s).second) << "duplicate subset";
    EXPECT_EQ(s.size(), 3u);
    for (std::size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i - 1], s[i]);
    for (const int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 6);
    }
    return true;
  });
  EXPECT_EQ(seen.size(), 20u);  // C(6,3)
}

TEST(ForEachSubset, EdgeCases) {
  int count = 0;
  for_each_subset(5, 0, [&](const std::vector<int>& s) {
    EXPECT_TRUE(s.empty());
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);  // the empty subset

  count = 0;
  for_each_subset(3, 5, [&](const std::vector<int>&) {
    ++count;
    return true;
  });
  EXPECT_EQ(count, 0);  // r > n: nothing to enumerate

  count = 0;
  for_each_subset(4, 4, [&](const std::vector<int>& s) {
    EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3}));
    ++count;
    return true;
  });
  EXPECT_EQ(count, 1);
}

TEST(ForEachSubset, AbortsOnFalse) {
  int count = 0;
  const bool completed = for_each_subset(8, 2, [&](const std::vector<int>&) {
    return ++count < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 5);
}

TEST(ToleratesAll, MatchesKnownCodes) {
  auto rs = make_rs(4, 2);
  EXPECT_TRUE(tolerates_all(*rs, 0));
  EXPECT_TRUE(tolerates_all(*rs, 1));
  EXPECT_TRUE(tolerates_all(*rs, 2));
  EXPECT_FALSE(tolerates_all(*rs, 3));
  const auto bad = first_unrepairable(*rs, 3);
  ASSERT_TRUE(bad.has_value());
  EXPECT_EQ(bad->size(), 3u);
  EXPECT_FALSE(rs->can_repair(*bad));
  EXPECT_FALSE(first_unrepairable(*rs, 2).has_value());
}

}  // namespace
}  // namespace approx::codes
