// The LinearCode engine itself: construction validation, strided views,
// schedule structure (peeling vs Gaussian), plan caching and accounting.
#include <gtest/gtest.h>

#include <algorithm>

#include "codes/linear_code.h"
#include "common/error.h"
#include "codes/rs_code.h"
#include "codes/array_codes.h"
#include "codes/lrc_code.h"
#include "common/buffer.h"
#include "common/prng.h"

namespace approx::codes {
namespace {

// A tiny handcrafted code: 3 data nodes, 1 XOR parity, rows=1.
std::shared_ptr<LinearCode> tiny_parity() {
  std::vector<std::vector<LinearCode::Term>> parity = {
      {{0, 1}, {1, 1}, {2, 1}}};
  return std::make_shared<LinearCode>("P(3)", 3, 1, 1, parity, 1);
}

TEST(LinearCode, ConstructionValidation) {
  // Parity table size mismatch.
  EXPECT_THROW(LinearCode("x", 3, 2, 1, {{{0, 1}}}, 1), InvalidArgument);
  // Out-of-range info reference.
  EXPECT_THROW(LinearCode("x", 3, 1, 1, {{{3, 1}}}, 1), InvalidArgument);
  // Zero coefficient.
  EXPECT_THROW(LinearCode("x", 3, 1, 1, {{{0, 0}}}, 1), InvalidArgument);
  // Bad geometry.
  EXPECT_THROW(LinearCode("x", 0, 1, 1, {{}}, 0), InvalidArgument);
}

TEST(LinearCode, BinaryDetection) {
  EXPECT_TRUE(tiny_parity()->is_binary());
  std::vector<std::vector<LinearCode::Term>> gf_parity = {{{0, 2}, {1, 1}}};
  LinearCode code("g", 2, 1, 1, gf_parity, 1);
  EXPECT_FALSE(code.is_binary());
}

TEST(LinearCode, EncodeComputesXorParity) {
  auto code = tiny_parity();
  StripeBuffers buf(4, 16);
  for (int d = 0; d < 3; ++d) {
    for (int i = 0; i < 16; ++i) {
      buf.node(d)[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(d * 16 + i);
    }
  }
  auto spans = buf.spans();
  code->encode_blocks(spans, 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(buf.node(3)[static_cast<std::size_t>(i)],
              buf.node(0)[static_cast<std::size_t>(i)] ^
                  buf.node(1)[static_cast<std::size_t>(i)] ^
                  buf.node(2)[static_cast<std::size_t>(i)]);
  }
}

TEST(LinearCode, StridedViewsEncodeSubranges) {
  // Encode only bytes [4, 8) of each element via range views and confirm
  // bytes outside the range are untouched.
  auto code = tiny_parity();
  StripeBuffers buf(4, 16);
  Rng rng(1);
  for (int d = 0; d < 3; ++d) {
    auto s = buf.node(d);
    fill_random(s.data(), s.size(), rng);
  }
  std::vector<std::uint8_t> parity_before(buf.node(3).begin(), buf.node(3).end());
  std::vector<NodeView> views;
  for (int n = 0; n < 4; ++n) views.push_back(range_view(buf.node(n), 16, 4, 4));
  code->encode(views);
  for (int i = 0; i < 16; ++i) {
    if (i >= 4 && i < 8) {
      EXPECT_EQ(buf.node(3)[static_cast<std::size_t>(i)],
                buf.node(0)[static_cast<std::size_t>(i)] ^
                    buf.node(1)[static_cast<std::size_t>(i)] ^
                    buf.node(2)[static_cast<std::size_t>(i)]);
    } else {
      EXPECT_EQ(buf.node(3)[static_cast<std::size_t>(i)],
                parity_before[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(LinearCode, MismatchedViewLengthsThrow) {
  auto code = tiny_parity();
  StripeBuffers buf(4, 16);
  std::vector<NodeView> views;
  for (int n = 0; n < 4; ++n) views.push_back(full_view(buf.node(n), 16));
  views[2].len = 8;
  EXPECT_THROW(code->encode(views), InvalidArgument);
}

TEST(LinearCode, PlanStructureSingleFailure) {
  auto code = make_rs(5, 3);
  auto plan = code->plan_repair(std::vector<int>{2});
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->targets.size(), 1u);
  EXPECT_EQ(plan->target_elements, 1u);
  EXPECT_EQ(plan->targets[0].elem.node, 2);
  // Peeling resolves through one parity row: k-1 data + 1 parity sources.
  EXPECT_EQ(plan->targets[0].sources.size(), 5u);
  EXPECT_EQ(plan->source_nodes.size(), 5u);
  // Source nodes never include the erased node.
  EXPECT_EQ(std::count(plan->source_nodes.begin(), plan->source_nodes.end(), 2), 0);
}

TEST(LinearCode, PlanTargetsAreInDependencyOrder) {
  // Every source referencing an erased node must point at an earlier target.
  for (auto code : {make_star(7, 3), make_rs(8, 3), make_tip(7, 3)}) {
    const std::vector<int> erased = {0, 1, code->total_nodes() - 1};
    auto plan = code->plan_repair(erased);
    ASSERT_NE(plan, nullptr) << code->name();
    std::vector<ElemRef> done;
    for (const auto& target : plan->targets) {
      for (const auto& src : target.sources) {
        const bool src_erased =
            std::find(erased.begin(), erased.end(), src.elem.node) != erased.end();
        if (src_erased) {
          EXPECT_NE(std::find(done.begin(), done.end(), src.elem), done.end())
              << code->name() << ": forward reference";
        }
      }
      done.push_back(target.elem);
    }
  }
}

TEST(LinearCode, PeelingAndGaussianAgree) {
  // Both solver modes must produce correct (if differently shaped) repairs.
  for (auto code : {make_star(5, 3), make_rs(6, 3), make_evenodd(7)}) {
    for (const std::vector<int>& erased :
         {std::vector<int>{0}, std::vector<int>{0, 1}, std::vector<int>{1, 3}}) {
      for (const bool peel : {true, false}) {
        code->set_peeling_enabled(peel);
        StripeBuffers buf(code->total_nodes(),
                          64 * static_cast<std::size_t>(code->rows()));
        Rng rng(99);
        for (int d = 0; d < code->data_nodes(); ++d) {
          auto s = buf.node(d);
          fill_random(s.data(), s.size(), rng);
        }
        auto spans = buf.spans();
        code->encode_blocks(spans, 64);
        std::vector<std::vector<std::uint8_t>> want;
        for (int n = 0; n < code->total_nodes(); ++n) {
          want.emplace_back(buf.node(n).begin(), buf.node(n).end());
        }
        for (const int e : erased) buf.clear_node(e);
        auto spans2 = buf.spans();
        ASSERT_TRUE(code->repair_blocks(spans2, 64, erased)) << code->name();
        for (int n = 0; n < code->total_nodes(); ++n) {
          ASSERT_TRUE(std::equal(buf.node(n).begin(), buf.node(n).end(),
                                 want[static_cast<std::size_t>(n)].begin()))
              << code->name() << " peel=" << peel;
        }
        code->set_peeling_enabled(true);
      }
    }
  }
}

TEST(LinearCode, PeelingKeepsSingleFailureChainsMinimal) {
  // Single data-node failure always peels through the horizontal parity:
  // exactly k sources per element (k-1 data partners + the parity element).
  auto star = make_star(11, 3);
  auto plan = star->plan_repair(std::vector<int>{3});
  ASSERT_NE(plan, nullptr);
  for (const auto& target : plan->targets) {
    EXPECT_EQ(target.sources.size(), 11u);
  }
  // LRC single failure peels through the local group (3 sources), while
  // the dense solver has no locality guarantee baked into the schedule.
  auto lrc = make_lrc(12, 4, 2);
  auto local_plan = lrc->plan_repair(std::vector<int>{0});
  ASSERT_NE(local_plan, nullptr);
  EXPECT_EQ(local_plan->targets[0].sources.size(), 3u);
}

TEST(LinearCode, PeelingNeverProducesLargerSchedulesThanGaussian) {
  for (auto code : {make_star(11, 3), make_rs(9, 3), make_lrc(9, 4, 2),
                    make_tip(11, 3)}) {
    for (const std::vector<int>& erased :
         {std::vector<int>{0}, std::vector<int>{0, 1}, std::vector<int>{0, 2, 4}}) {
      code->set_peeling_enabled(true);
      const auto sparse = code->plan_repair(erased);
      code->set_peeling_enabled(false);
      const auto dense = code->plan_repair(erased);
      code->set_peeling_enabled(true);
      ASSERT_NE(sparse, nullptr) << code->name();
      ASSERT_NE(dense, nullptr) << code->name();
      EXPECT_LE(sparse->source_elements, dense->source_elements) << code->name();
    }
  }
}

TEST(LinearCode, PlanCacheReturnsSameObject) {
  auto code = make_rs(6, 3);
  auto a = code->plan_repair(std::vector<int>{1, 3});
  auto b = code->plan_repair(std::vector<int>{3, 1});  // order-insensitive
  auto c = code->plan_repair(std::vector<int>{1, 3, 3});  // dedup
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a.get(), c.get());
  code->set_plan_cache_enabled(false);
  auto d = code->plan_repair(std::vector<int>{1, 3});
  EXPECT_NE(a.get(), d.get());
  code->set_plan_cache_enabled(true);
}

TEST(LinearCode, UnrecoverablePatternsCacheNull) {
  auto code = make_rs(5, 2);
  EXPECT_FALSE(code->can_repair(std::vector<int>{0, 1, 2}));
  EXPECT_EQ(code->plan_repair(std::vector<int>{0, 1, 2}), nullptr);
  // Still recoverable patterns work after a failed query.
  EXPECT_TRUE(code->can_repair(std::vector<int>{0, 1}));
}

TEST(LinearCode, ErasedNodeOutOfRangeThrows) {
  auto code = make_rs(4, 2);
  EXPECT_THROW(code->plan_repair(std::vector<int>{6}), InvalidArgument);
  EXPECT_THROW(code->plan_repair(std::vector<int>{-1}), InvalidArgument);
}

TEST(LinearCode, AnalyticMetrics) {
  auto rs = make_rs(10, 3);
  EXPECT_DOUBLE_EQ(rs->storage_overhead(), 1.3);
  EXPECT_DOUBLE_EQ(rs->avg_single_write_cost(), 4.0);  // r + 1
  auto eo = make_evenodd(5);
  // EVENODD single-write: 4 - 2/p.
  EXPECT_NEAR(eo->avg_single_write_cost(), 4.0 - 2.0 / 5.0, 1e-12);
}

TEST(LinearCode, RepairEmptyErasedIsTrivial) {
  auto code = make_rs(4, 2);
  StripeBuffers buf(6, 32);
  auto spans = buf.spans();
  EXPECT_TRUE(code->repair_blocks(spans, 32, std::vector<int>{}));
}

}  // namespace
}  // namespace approx::codes
