// XOR kernels vs scalar references, across sizes and alignments.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/prng.h"
#include "xorblk/xor_kernels.h"

namespace approx::xorblk {
namespace {

class XorKernelTest : public testing::TestWithParam<std::size_t> {};

TEST_P(XorKernelTest, XorAccMatchesScalar) {
  const std::size_t n = GetParam();
  Rng rng(n + 1);
  std::vector<std::uint8_t> dst(n), src(n), expect(n);
  fill_random(dst.data(), n, rng);
  fill_random(src.data(), n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    expect[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
  }
  xor_acc(dst.data(), src.data(), n);
  EXPECT_EQ(dst, expect);
}

TEST_P(XorKernelTest, XorAcc2MatchesTwoSingleCalls) {
  const std::size_t n = GetParam();
  Rng rng(n + 2);
  std::vector<std::uint8_t> dst(n), a(n), b(n);
  fill_random(dst.data(), n, rng);
  fill_random(a.data(), n, rng);
  fill_random(b.data(), n, rng);
  auto expect = dst;
  xor_acc(expect.data(), a.data(), n);
  xor_acc(expect.data(), b.data(), n);
  xor_acc2(dst.data(), a.data(), b.data(), n);
  EXPECT_EQ(dst, expect);
}

TEST_P(XorKernelTest, GatherMatchesSequentialAcc) {
  const std::size_t n = GetParam();
  Rng rng(n + 3);
  std::vector<std::vector<std::uint8_t>> srcs(5, std::vector<std::uint8_t>(n));
  std::vector<const std::uint8_t*> ptrs;
  for (auto& s : srcs) {
    fill_random(s.data(), n, rng);
    ptrs.push_back(s.data());
  }
  std::vector<std::uint8_t> expect(n, 0);
  for (const auto& s : srcs) xor_acc(expect.data(), s.data(), n);
  std::vector<std::uint8_t> dst(n, 0xFF);  // gather overwrites
  xor_gather(dst.data(), ptrs, n);
  EXPECT_EQ(dst, expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, XorKernelTest,
                         testing::Values(0, 1, 7, 8, 9, 31, 32, 33, 63, 64, 65,
                                         255, 256, 1 << 12),
                         [](const auto& in) {
                           return "n" + std::to_string(in.param);
                         });

TEST(XorKernels, UnalignedOffsetsAreCorrect) {
  Rng rng(42);
  AlignedBuffer dst(256), src(256);
  fill_random(dst.data(), 256, rng);
  fill_random(src.data(), 256, rng);
  for (const std::size_t off : {1u, 3u, 5u, 7u}) {
    std::vector<std::uint8_t> expect(dst.data() + off, dst.data() + 256);
    for (std::size_t i = 0; i < expect.size(); ++i) {
      expect[i] = static_cast<std::uint8_t>(expect[i] ^ src[off + i]);
    }
    xor_acc(dst.data() + off, src.data() + off, 256 - off);
    EXPECT_TRUE(std::equal(expect.begin(), expect.end(), dst.data() + off)) << off;
  }
}

TEST(XorKernels, SelfXorZeroes) {
  Rng rng(43);
  std::vector<std::uint8_t> buf(100);
  fill_random(buf.data(), buf.size(), rng);
  xor_acc(buf.data(), buf.data(), buf.size());
  EXPECT_TRUE(is_zero(buf.data(), buf.size()));
}

TEST(XorKernels, GatherSingleSourceIsCopy) {
  Rng rng(44);
  std::vector<std::uint8_t> src(64);
  fill_random(src.data(), src.size(), rng);
  std::vector<std::uint8_t> dst(64, 0);
  const std::uint8_t* p = src.data();
  xor_gather(dst.data(), std::span<const std::uint8_t* const>(&p, 1), 64);
  EXPECT_EQ(dst, src);
}

TEST(XorKernels, GatherNoSourcesZeroes) {
  std::vector<std::uint8_t> dst(32, 0xAB);
  xor_gather(dst.data(), {}, 32);
  EXPECT_TRUE(is_zero(dst.data(), 32));
}

TEST(XorKernels, IsZeroEdgeCases) {
  EXPECT_TRUE(is_zero(nullptr, 0));
  std::vector<std::uint8_t> buf(65, 0);
  EXPECT_TRUE(is_zero(buf.data(), buf.size()));
  buf[64] = 1;  // tail byte
  EXPECT_FALSE(is_zero(buf.data(), buf.size()));
  buf[64] = 0;
  buf[0] = 1;
  EXPECT_FALSE(is_zero(buf.data(), buf.size()));
}

}  // namespace
}  // namespace approx::xorblk
