#!/bin/sh
# End-to-end lifecycle test of the approxcli tool (ApproxStore v2 volumes).
#   $1 = path to the approxcli binary
set -e

CLI="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# Deterministic test payload (600 KB).
awk 'BEGIN { srand(7); for (i = 0; i < 600000; ++i) printf "%c", int(rand()*256) }' \
    > input.bin 2>/dev/null || head -c 600000 /dev/zero | tr '\0' 'x' > input.bin

fail() { echo "FAIL: $1"; exit 1; }

# --- encode / info / scrub on a healthy volume -----------------------------
"$CLI" encode --family rs --k 4 --r 1 --g 2 --h 4 --block 4096 input.bin vol \
    || fail "encode"
"$CLI" info vol | grep -q 'APPR.RS(4,1,2,4,Even)' || fail "info reports code"
[ -f vol/superblock.bin ] || fail "v2 volume missing superblock"
"$CLI" scrub vol || fail "healthy scrub"

# --- lossless roundtrip ------------------------------------------------------
"$CLI" decode vol roundtrip.bin || fail "decode healthy"
cmp -s input.bin roundtrip.bin || fail "healthy roundtrip differs"

# --- single failure: self-healing degraded decode ----------------------------
rm vol/node_002.acb
"$CLI" decode vol degraded.bin || fail "degraded decode should succeed"
cmp -s input.bin degraded.bin || fail "degraded roundtrip differs"
# The degraded read healed the volume in the background: the lost chunk
# file is back and the volume scrubs clean without an explicit repair.
[ -f vol/node_002.acb ] || fail "degraded decode did not rebuild the node"
"$CLI" scrub vol || fail "scrub after self-heal"

# --- single failure: full recovery via explicit repair ------------------------
rm vol/node_002.acb
"$CLI" repair vol || fail "single-failure repair"
"$CLI" scrub vol || fail "scrub after single repair"
"$CLI" decode vol single.bin || fail "decode after single repair"
cmp -s input.bin single.bin || fail "single-failure roundtrip differs"

# --- double failure: important prefix survives -------------------------------
rm vol/node_000.acb vol/node_001.acb
rc=0; "$CLI" repair vol || rc=$?
[ "$rc" -eq 0 ] || fail "double-failure repair lost important data"
"$CLI" scrub vol || fail "scrub after double repair"
rc=0; "$CLI" decode vol double.bin || rc=$?
[ "$rc" -eq 4 ] || fail "decode after data loss should exit 4, got $rc"
# Important prefix (= size/h = 150000 bytes) must be intact.
head -c 150000 input.bin > want.head
head -c 150000 double.bin > got.head
cmp -s want.head got.head || fail "important prefix damaged"

# --- corruption detection + repair -------------------------------------------
"$CLI" encode --family crs --k 6 input.bin vol2 >/dev/null || fail "crs encode"
dd if=/dev/zero of=vol2/node_004.acb bs=1 count=3 seek=100 conv=notrunc 2>/dev/null
if "$CLI" scrub vol2; then fail "scrub missed corruption"; fi
"$CLI" repair vol2 || fail "corruption repair"
"$CLI" scrub vol2 || fail "scrub after corruption repair"
"$CLI" decode vol2 fixed.bin || fail "decode after corruption repair"
cmp -s input.bin fixed.bin || fail "corruption roundtrip differs"

# --- corrupt manifest is a typed error, not a crash --------------------------
"$CLI" encode input.bin vol3 >/dev/null || fail "default encode"
sed 's/^k=.*/k=banana/' vol3/manifest.txt > vol3/manifest.txt.new
mv vol3/manifest.txt.new vol3/manifest.txt
rc=0; msg=$("$CLI" info vol3 2>&1) || rc=$?
[ "$rc" -eq 1 ] || fail "corrupt manifest should exit 1 (corruption), got $rc"
echo "$msg" | grep -q 'corrupt manifest' || fail "corrupt manifest not reported"

# --- exit codes distinguish the failure classes ------------------------------
rc=0; "$CLI" info no-such-volume 2>/dev/null || rc=$?
[ "$rc" -eq 3 ] || fail "missing volume should exit 3 (I/O error), got $rc"
rc=0; "$CLI" frobnicate 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "unknown command should exit 2 (usage), got $rc"

# --- request tracing: --trace-out writes a Chrome trace-event file -----------
"$CLI" --trace-out trace.json decode vol2 traced.bin || fail "decode with --trace-out"
cmp -s input.bin traced.bin || fail "traced decode roundtrip differs"
[ -s trace.json ] || fail "--trace-out produced no file"
grep -q '"traceEvents"' trace.json || fail "trace file missing traceEvents"
grep -q 'cli.decode' trace.json || fail "trace file missing cli root span"
# The export is one JSON document and the CLI root span ties the request
# into a single trace tree (one span with parent 0 per trace id).
if command -v python3 >/dev/null 2>&1; then
  python3 - trace.json <<'EOF' || fail "trace file is not a single well-formed tree"
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["traceEvents"]
assert events, "no spans recorded"
traces = {}
for e in events:
    a = e["args"]
    traces.setdefault(a["trace"], []).append(a)
for trace, spans in traces.items():
    ids = {s["span"] for s in spans}
    roots = [s for s in spans if s["parent"] == 0]
    assert len(roots) == 1, f"trace {trace}: {len(roots)} roots"
    for s in spans:
        assert s["parent"] == 0 or s["parent"] in ids, f"trace {trace}: orphan span"
EOF
fi
rc=0; "$CLI" --trace-out 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "--trace-out without a file should exit 2 (usage), got $rc"

# --- stats surface the robustness instruments --------------------------------
stats=$("$CLI" stats --json vol) || fail "stats"
for key in store.degraded_reads store.quarantined_chunks \
           store.crash_recoveries store.repair.queue_depth; do
  echo "$stats" | grep -q "$key" || fail "stats --json missing $key"
done

# --- hot-tier read cache: flag and env knobs ---------------------------------
# vol2 is healthy (repaired and scrubbed clean above); vol has permanent
# approximate-mode data loss, so cached roundtrips run against vol2.
"$CLI" --cache-mb 8 decode vol2 cached.bin || fail "decode with --cache-mb"
cmp -s input.bin cached.bin || fail "cached decode roundtrip differs"
APPROX_CACHE_MB=8 "$CLI" decode vol2 env_cached.bin \
    || fail "decode with APPROX_CACHE_MB"
cmp -s input.bin env_cached.bin || fail "env-cached decode roundtrip differs"
rc=0; "$CLI" --cache-mb banana info vol2 2>/dev/null || rc=$?
[ "$rc" -eq 2 ] || fail "--cache-mb banana should exit 2 (usage), got $rc"
# With the cache enabled, stats exports its counters; the pool scheduler
# gauges are published unconditionally.
stats=$("$CLI" --cache-mb 8 stats --json vol2) || fail "stats with cache"
for key in store.cache.hits store.cache.misses store.cache.evictions \
           store.cache.bytes pool.queue.interactive pool.queue.bulk \
           pool.aged_bulk_pops; do
  echo "$stats" | grep -q "$key" || fail "stats --json missing $key"
done

# --- kernel backend env knob: explicit names + graceful fallback -------------
# A healthy decode reads data chunks without ever entering the kernels, so
# each probe deletes a node file first: the degraded decode must reconstruct
# through the named backend (and the self-heal restores the file for the
# next iteration).  Naming a SIMD backend must work whether or not the host
# supports it: if unavailable the dispatcher warns on stderr and falls
# back, and the roundtrip stays byte-identical either way.
for backend in scalar ssse3 avx2 avx512 gfni; do
  rm vol2/node_004.acb
  APPROX_KERNEL=$backend "$CLI" decode vol2 "kern_$backend.bin" \
      || fail "degraded decode under APPROX_KERNEL=$backend"
  cmp -s input.bin "kern_$backend.bin" \
      || fail "APPROX_KERNEL=$backend roundtrip differs"
  [ -f vol2/node_004.acb ] || fail "APPROX_KERNEL=$backend did not self-heal"
done
# An unknown name is a warning (listing the compiled-in vocabulary), never
# an error: the decode proceeds on the fallback backend.
rm vol2/node_004.acb
rc=0; msg=$(APPROX_KERNEL=banana "$CLI" decode vol2 kern_bad.bin 2>&1) || rc=$?
[ "$rc" -eq 0 ] || fail "APPROX_KERNEL=banana should fall back, got exit $rc"
cmp -s input.bin kern_bad.bin || fail "fallback-backend roundtrip differs"
echo "$msg" | grep -q 'APPROX_KERNEL=banana is not a known backend' \
    || fail "unknown backend not warned about"
echo "$msg" | grep -q 'avx512' || fail "warning does not list the vocabulary"

# --- schedule-compiler env knob: both modes roundtrip, unknowns warn ---------
for sched in naive compiled; do
  rm vol2/node_004.acb
  APPROX_SCHEDULE=$sched "$CLI" decode vol2 "sched_$sched.bin" \
      || fail "degraded decode under APPROX_SCHEDULE=$sched"
  cmp -s input.bin "sched_$sched.bin" \
      || fail "APPROX_SCHEDULE=$sched roundtrip differs"
done
rm vol2/node_004.acb
rc=0; msg=$(APPROX_SCHEDULE=banana "$CLI" decode vol2 sched_bad.bin 2>&1) || rc=$?
[ "$rc" -eq 0 ] || fail "APPROX_SCHEDULE=banana should fall back, got exit $rc"
cmp -s input.bin sched_bad.bin || fail "fallback-mode roundtrip differs"
echo "$msg" | grep -q 'APPROX_SCHEDULE=banana is not a known mode' \
    || fail "unknown schedule mode not warned about"
"$CLI" scrub vol2 || fail "scrub after kernel/schedule probes"

# --- network failure class: unreachable coordinator exits 5 -------------------
rc=0; "$CLI" get --coordinator 127.0.0.1:1 rvol nope.bin 2>/dev/null || rc=$?
[ "$rc" -eq 5 ] || fail "unreachable coordinator should exit 5 (network), got $rc"

# --- a real localhost TCP cluster: put / kill node / degraded get / repair ----
CLUSTER_PIDS=""
trap 'kill $CLUSTER_PIDS 2>/dev/null || true; rm -rf "$WORK"' EXIT

# The coordinator and daemons bind port 0 and print "listening <endpoint>".
wait_listening() {  # $1 = output file, $2 = what
  i=0
  while [ $i -lt 100 ]; do
    ep=$(sed -n 's/^listening //p' "$1" 2>/dev/null | head -n 1)
    [ -n "$ep" ] && return 0
    sleep 0.1; i=$((i + 1))
  done
  fail "$2 never reported its endpoint"
}

"$CLI" coordinator --listen 127.0.0.1:0 --meta meta > coord.out 2>&1 &
CLUSTER_PIDS="$CLUSTER_PIDS $!"
wait_listening coord.out coordinator
COORD="$ep"

n=0
while [ $n -lt 4 ]; do
  "$CLI" serve --listen 127.0.0.1:0 --data "d$n" --coordinator "$COORD" \
      --name "n$n" --rack "$n" > "serve$n.out" 2>&1 &
  CLUSTER_PIDS="$CLUSTER_PIDS $!"
  eval "SERVE${n}_PID=\$!"
  n=$((n + 1))
done
n=0
while [ $n -lt 4 ]; do
  wait_listening "serve$n.out" "daemon n$n"
  n=$((n + 1))
done

"$CLI" put --coordinator "$COORD" --k 2 --r 1 --g 1 --h 2 input.bin rvol \
    || fail "remote put"
"$CLI" get --coordinator "$COORD" rvol remote.bin || fail "remote get"
cmp -s input.bin remote.bin || fail "remote roundtrip differs"

# Kill one daemon mid-cluster: the get reconstructs its chunks (degraded),
# still byte-identical.
kill -9 "$SERVE0_PID" 2>/dev/null || true
"$CLI" get --coordinator "$COORD" rvol degraded_remote.bin \
    || fail "remote degraded get after node kill"
cmp -s input.bin degraded_remote.bin || fail "remote degraded roundtrip differs"

# Replace the daemon on a wiped disk; repair rebuilds its chunks in place.
rm -rf d0
"$CLI" serve --listen 127.0.0.1:0 --data d0 --coordinator "$COORD" \
    --name n0 --rack 0 > serve0b.out 2>&1 &
CLUSTER_PIDS="$CLUSTER_PIDS $!"
wait_listening serve0b.out "replacement daemon n0"
rc=0; "$CLI" scrub --coordinator "$COORD" rvol 2>/dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "remote scrub should flag the wiped node (exit 1), got $rc"
"$CLI" repair --coordinator "$COORD" rvol || fail "remote repair"
"$CLI" scrub --coordinator "$COORD" rvol || fail "remote scrub after repair"
"$CLI" get --coordinator "$COORD" rvol repaired_remote.bin \
    || fail "remote get after repair"
cmp -s input.bin repaired_remote.bin || fail "repaired remote roundtrip differs"

# Remote stats expose the rpc instruments.
stats=$("$CLI" stats --json --coordinator "$COORD" rvol) || fail "remote stats"
for key in net.rpc.sent net.rpc.retries net.rpc.hedged net.rpc.timeouts; do
  echo "$stats" | grep -q "$key" || fail "remote stats --json missing $key"
done

echo "PASS"
