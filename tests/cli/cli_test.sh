#!/bin/sh
# End-to-end lifecycle test of the approxcli tool.
#   $1 = path to the approxcli binary
set -e

CLI="$1"
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT
cd "$WORK"

# Deterministic test payload (600 KB).
awk 'BEGIN { srand(7); for (i = 0; i < 600000; ++i) printf "%c", int(rand()*256) }' \
    > input.bin 2>/dev/null || head -c 600000 /dev/zero | tr '\0' 'x' > input.bin

fail() { echo "FAIL: $1"; exit 1; }

# --- encode / info / scrub on a healthy volume -----------------------------
"$CLI" encode --family rs --k 4 --r 1 --g 2 --h 4 --block 4096 input.bin vol \
    || fail "encode"
"$CLI" info vol | grep -q 'APPR.RS(4,1,2,4,Even)' || fail "info reports code"
"$CLI" scrub vol || fail "healthy scrub"

# --- lossless roundtrip ------------------------------------------------------
"$CLI" decode vol roundtrip.bin || fail "decode healthy"
cmp -s input.bin roundtrip.bin || fail "healthy roundtrip differs"

# --- single failure: full recovery ------------------------------------------
rm vol/node_002.bin
"$CLI" repair vol || fail "single-failure repair"
"$CLI" scrub vol || fail "scrub after single repair"
"$CLI" decode vol single.bin || fail "decode after single repair"
cmp -s input.bin single.bin || fail "single-failure roundtrip differs"

# --- double failure: important prefix survives -------------------------------
rm vol/node_000.bin vol/node_001.bin
rc=0; "$CLI" repair vol || rc=$?
[ "$rc" -eq 0 ] || fail "double-failure repair lost important data"
"$CLI" scrub vol || fail "scrub after double repair"
rc=0; "$CLI" decode vol double.bin || rc=$?
[ "$rc" -eq 1 ] || fail "decode should report checksum mismatch"
# Important prefix (= size/h = 150000 bytes) must be intact.
head -c 150000 input.bin > want.head
head -c 150000 double.bin > got.head
cmp -s want.head got.head || fail "important prefix damaged"

# --- corruption detection -----------------------------------------------------
"$CLI" encode --family crs --k 6 input.bin vol2 >/dev/null || fail "crs encode"
dd if=/dev/zero of=vol2/node_004.bin bs=1 count=3 seek=100 conv=notrunc 2>/dev/null
if "$CLI" scrub vol2; then fail "scrub missed corruption"; fi

echo "PASS"
