// GF(2^8) matrices: algebra, inversion, rank, and the MDS property of the
// generator constructions (exhaustively verified on small sizes).
#include <gtest/gtest.h>

#include "codes/verify.h"
#include "common/error.h"
#include "common/prng.h"
#include "gf/gf256.h"
#include "gf/gf_matrix.h"

namespace approx::gf {
namespace {

Matrix random_matrix(int rows, int cols, Rng& rng) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m.at(i, j) = rng.byte();
  }
  return m;
}

TEST(Matrix, IdentityIsMultiplicativeUnit) {
  Rng rng(1);
  const Matrix a = random_matrix(5, 5, rng);
  EXPECT_EQ(a * Matrix::identity(5), a);
  EXPECT_EQ(Matrix::identity(5) * a, a);
}

TEST(Matrix, MultiplicationIsAssociative) {
  Rng rng(2);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 5, rng);
  const Matrix c = random_matrix(5, 2, rng);
  EXPECT_EQ((a * b) * c, a * (b * c));
}

TEST(Matrix, DimensionMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
  EXPECT_THROW(a.inverted(), InvalidArgument);
}

TEST(Matrix, InverseRoundtrip) {
  Rng rng(3);
  int inverted_count = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const Matrix a = random_matrix(6, 6, rng);
    const auto inv = a.inverted();
    if (!inv.has_value()) continue;  // singular random draw
    ++inverted_count;
    EXPECT_EQ(a * *inv, Matrix::identity(6));
    EXPECT_EQ(*inv * a, Matrix::identity(6));
  }
  EXPECT_GT(inverted_count, 20);  // most random matrices are invertible
}

TEST(Matrix, SingularMatrixHasNoInverse) {
  Matrix a(3, 3);
  a.at(0, 0) = 1;
  a.at(1, 0) = 1;  // duplicate column pattern, rank 1
  a.at(2, 0) = 1;
  EXPECT_FALSE(a.inverted().has_value());
  EXPECT_EQ(a.rank(), 1);
}

TEST(Matrix, RankProperties) {
  EXPECT_EQ(Matrix::identity(7).rank(), 7);
  Matrix zero(4, 6);
  EXPECT_EQ(zero.rank(), 0);
  Rng rng(4);
  const Matrix a = random_matrix(3, 8, rng);
  EXPECT_LE(a.rank(), 3);
}

TEST(Matrix, SelectRows) {
  Rng rng(5);
  const Matrix a = random_matrix(5, 3, rng);
  const Matrix sel = a.select_rows({4, 0});
  EXPECT_EQ(sel.rows(), 2);
  for (int j = 0; j < 3; ++j) {
    EXPECT_EQ(sel.at(0, j), a.at(4, j));
    EXPECT_EQ(sel.at(1, j), a.at(0, j));
  }
  EXPECT_THROW(a.select_rows({5}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Generator constructions
// ---------------------------------------------------------------------------

TEST(Vandermonde, TopBlockIsIdentity) {
  const Matrix g = systematic_vandermonde(9, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_EQ(g.at(i, j), i == j ? 1 : 0);
    }
  }
}

TEST(Vandermonde, EveryKRowSubsetIsInvertible) {
  // The MDS property, exhaustively for n=8, k=4: C(8,4)=70 subsets.
  const int n = 8, k = 4;
  const Matrix g = systematic_vandermonde(n, k);
  codes::for_each_subset(n, k, [&](const std::vector<int>& rows) {
    const Matrix sub = g.select_rows(rows);
    EXPECT_TRUE(sub.inverted().has_value());
    return true;
  });
}

TEST(Vandermonde, LargeConfigurationsConstruct) {
  EXPECT_NO_THROW(systematic_vandermonde(255, 200));
  EXPECT_THROW(systematic_vandermonde(256, 10), InvalidArgument);
  EXPECT_THROW(systematic_vandermonde(3, 5), InvalidArgument);
}

TEST(Cauchy, EverySquareSubmatrixIsInvertible) {
  const int m = 3, k = 6;
  const Matrix c = cauchy_parity(m, k);
  // 1x1: all entries non-zero.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < k; ++j) EXPECT_NE(c.at(i, j), 0);
  }
  // 2x2 and 3x3 minors.
  codes::for_each_subset(m, 2, [&](const std::vector<int>& rows) {
    return codes::for_each_subset(k, 2, [&](const std::vector<int>& cols) {
      Matrix minor(2, 2);
      for (int i = 0; i < 2; ++i) {
        for (int j = 0; j < 2; ++j) {
          minor.at(i, j) = c.at(rows[static_cast<std::size_t>(i)],
                                cols[static_cast<std::size_t>(j)]);
        }
      }
      EXPECT_TRUE(minor.inverted().has_value());
      return true;
    });
  });
}

}  // namespace
}  // namespace approx::gf
