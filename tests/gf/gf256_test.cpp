// GF(2^8) arithmetic: field axioms (full and sampled sweeps), table
// consistency, region kernels vs scalar reference.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/error.h"
#include "common/prng.h"
#include "gf/gf256.h"

namespace approx::gf {
namespace {

TEST(Gf256, MultiplicationBasics) {
  EXPECT_EQ(mul(0, 0), 0);
  EXPECT_EQ(mul(0, 123), 0);
  EXPECT_EQ(mul(123, 0), 0);
  EXPECT_EQ(mul(1, 57), 57);
  EXPECT_EQ(mul(57, 1), 57);
  // 2 * x is the shift-and-reduce primitive: 2 * 0x80 = 0x100 ^ 0x11d = 0x1d.
  EXPECT_EQ(mul(2, 0x80), 0x1d);
}

TEST(Gf256, MultiplicationIsCommutative) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = a; b < 256; ++b) {
      ASSERT_EQ(mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(b), static_cast<std::uint8_t>(a)));
    }
  }
}

TEST(Gf256, MultiplicationIsAssociative) {
  // Sampled triples (full cube is 16M cases).
  Rng rng(3);
  for (int i = 0; i < 20000; ++i) {
    const std::uint8_t a = rng.byte(), b = rng.byte(), c = rng.byte();
    ASSERT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
  }
}

TEST(Gf256, DistributesOverXor) {
  Rng rng(4);
  for (int i = 0; i < 20000; ++i) {
    const std::uint8_t a = rng.byte(), b = rng.byte(), c = rng.byte();
    ASSERT_EQ(mul(a, static_cast<std::uint8_t>(b ^ c)),
              static_cast<std::uint8_t>(mul(a, b) ^ mul(a, c)));
  }
}

TEST(Gf256, InverseIsExactForAllNonZero) {
  for (unsigned a = 1; a < 256; ++a) {
    const std::uint8_t ia = inv(static_cast<std::uint8_t>(a));
    ASSERT_EQ(mul(static_cast<std::uint8_t>(a), ia), 1) << a;
  }
  EXPECT_THROW(inv(0), InvalidArgument);
}

TEST(Gf256, DivisionMatchesInverse) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 1; b < 256; ++b) {
      ASSERT_EQ(div(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                mul(static_cast<std::uint8_t>(a), inv(static_cast<std::uint8_t>(b))));
    }
  }
  EXPECT_THROW(div(5, 0), InvalidArgument);
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (unsigned a = 0; a < 256; ++a) {
    std::uint8_t acc = 1;
    for (unsigned e = 0; e < 12; ++e) {
      ASSERT_EQ(pow(static_cast<std::uint8_t>(a), e), acc) << a << "^" << e;
      acc = mul(acc, static_cast<std::uint8_t>(a));
    }
  }
  // Fermat: a^255 == 1 for non-zero a.
  for (unsigned a = 1; a < 256; ++a) {
    ASSERT_EQ(pow(static_cast<std::uint8_t>(a), 255), 1);
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 2 generates the multiplicative group: 2^i distinct for i in [0,255).
  std::vector<bool> seen(256, false);
  std::uint8_t x = 1;
  for (int i = 0; i < 255; ++i) {
    ASSERT_FALSE(seen[x]);
    seen[x] = true;
    x = mul(x, 2);
  }
  EXPECT_EQ(x, 1);
}

// ---------------------------------------------------------------------------
// Region kernels
// ---------------------------------------------------------------------------

TEST(GfRegion, MulAccMatchesScalar) {
  Rng rng(5);
  for (const std::size_t n : {0u, 1u, 7u, 8u, 63u, 64u, 1000u}) {
    for (const std::uint8_t c : {0, 1, 2, 87, 255}) {
      std::vector<std::uint8_t> dst(n), src(n), expect(n);
      fill_random(dst.data(), n, rng);
      fill_random(src.data(), n, rng);
      expect = dst;
      for (std::size_t i = 0; i < n; ++i) {
        expect[i] = static_cast<std::uint8_t>(expect[i] ^ mul(c, src[i]));
      }
      mul_acc_region(dst.data(), src.data(), n, c);
      ASSERT_EQ(dst, expect) << "n=" << n << " c=" << static_cast<int>(c);
    }
  }
}

TEST(GfRegion, MulRegionMatchesScalar) {
  Rng rng(6);
  for (const std::size_t n : {1u, 13u, 64u, 257u}) {
    for (const std::uint8_t c : {0, 1, 3, 200}) {
      std::vector<std::uint8_t> dst(n), src(n), expect(n);
      fill_random(src.data(), n, rng);
      for (std::size_t i = 0; i < n; ++i) expect[i] = mul(c, src[i]);
      mul_region(dst.data(), src.data(), n, c);
      ASSERT_EQ(dst, expect);
    }
  }
}

TEST(GfRegion, MulRegionInPlace) {
  Rng rng(7);
  std::vector<std::uint8_t> buf(100), expect(100);
  fill_random(buf.data(), buf.size(), rng);
  for (std::size_t i = 0; i < buf.size(); ++i) expect[i] = mul(9, buf[i]);
  mul_region(buf.data(), buf.data(), buf.size(), 9);
  EXPECT_EQ(buf, expect);
}

TEST(GfRegion, CoefficientOneIsXor) {
  Rng rng(8);
  std::vector<std::uint8_t> dst(129), src(129), expect(129);
  fill_random(dst.data(), dst.size(), rng);
  fill_random(src.data(), src.size(), rng);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    expect[i] = static_cast<std::uint8_t>(dst[i] ^ src[i]);
  }
  mul_acc_region(dst.data(), src.data(), dst.size(), 1);
  EXPECT_EQ(dst, expect);
}

TEST(GfRegion, CoefficientZeroIsNoop) {
  Rng rng(9);
  std::vector<std::uint8_t> dst(77), src(77);
  fill_random(dst.data(), dst.size(), rng);
  fill_random(src.data(), src.size(), rng);
  const auto before = dst;
  mul_acc_region(dst.data(), src.data(), dst.size(), 0);
  EXPECT_EQ(dst, before);
}

}  // namespace
}  // namespace approx::gf
