// Video substrate: RLE, GOP codec, bitstream container and classifier.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "video/bitstream.h"
#include "video/classifier.h"
#include "video/codec.h"
#include "video/rle.h"
#include "video/scene.h"

namespace approx::video {
namespace {

std::vector<Frame> make_scene(int frames, int w = 96, int h = 64,
                              std::uint64_t seed = 11) {
  SceneGenerator gen(w, h, seed);
  std::vector<Frame> out;
  out.reserve(static_cast<std::size_t>(frames));
  for (int t = 0; t < frames; ++t) out.push_back(gen.frame(t));
  return out;
}

// ---------------------------------------------------------------------------
// RLE
// ---------------------------------------------------------------------------

TEST(Rle, RoundtripRandom) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> raw(rng.below(4096));
    fill_random(raw.data(), raw.size(), rng);
    auto enc = rle_encode(raw);
    auto dec = rle_decode(enc, raw.size());
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(*dec, raw);
  }
}

TEST(Rle, RoundtripSparse) {
  std::vector<std::uint8_t> raw(100000, 0);
  raw[17] = 9;
  raw[70000] = 250;
  auto enc = rle_encode(raw);
  EXPECT_LT(enc.size(), raw.size() / 100);  // sparse input compresses hard
  auto dec = rle_decode(enc, raw.size());
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, raw);
}

TEST(Rle, LongZeroRunsSplitCorrectly) {
  std::vector<std::uint8_t> raw(0x10000 + 123, 0);  // > one u16 run
  auto enc = rle_encode(raw);
  auto dec = rle_decode(enc, raw.size());
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, raw);
}

TEST(Rle, RejectsMalformedInput) {
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0x00}, 4).has_value());
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0x00, 0x00, 0x00}, 4).has_value());
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0x02, 0x01}, 1).has_value());
  EXPECT_FALSE(rle_decode(std::vector<std::uint8_t>{0x01}, 1).has_value());
  // Size mismatch.
  auto enc = rle_encode(std::vector<std::uint8_t>{1, 2, 3});
  EXPECT_FALSE(rle_decode(enc, 4).has_value());
  EXPECT_FALSE(rle_decode(enc, 2).has_value());
}

TEST(Rle, EmptyInput) {
  auto enc = rle_encode({});
  EXPECT_TRUE(enc.empty());
  auto dec = rle_decode(enc, 0);
  ASSERT_TRUE(dec.has_value());
  EXPECT_TRUE(dec->empty());
}

// ---------------------------------------------------------------------------
// GOP pattern
// ---------------------------------------------------------------------------

TEST(Gop, PatternValidation) {
  EXPECT_NO_THROW(GopPattern("IPPP"));
  EXPECT_NO_THROW(GopPattern("I"));
  EXPECT_THROW(GopPattern(""), InvalidArgument);
  EXPECT_THROW(GopPattern("PI"), InvalidArgument);
  EXPECT_THROW(GopPattern("IPX"), InvalidArgument);
  EXPECT_THROW(GopPattern("IPI"), InvalidArgument);
}

TEST(Gop, TypeAssignment) {
  GopPattern gop("IBBP");
  EXPECT_EQ(gop.type_at(0), FrameType::I);
  EXPECT_EQ(gop.type_at(1), FrameType::B);
  EXPECT_EQ(gop.type_at(3), FrameType::P);
  EXPECT_EQ(gop.type_at(4), FrameType::I);  // next GOP
  EXPECT_EQ(gop.gop_of(4), 1u);
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(Codec, LosslessForIAndPOnlyStreams) {
  auto frames = make_scene(13);
  auto video = encode_video(frames, GopPattern("IPPP"));
  std::vector<bool> lost(frames.size(), false);
  auto decoded = decode_video(video, lost);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(decoded[i].has_value());
    EXPECT_EQ(decoded[i]->luma, frames[i].luma) << "frame " << i;
  }
}

TEST(Codec, BFramesAreNearLossless) {
  auto frames = make_scene(13);
  auto video = encode_video(frames, GopPattern("IBBPBB"));
  std::vector<bool> lost(frames.size(), false);
  auto decoded = decode_video(video, lost);
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(decoded[i].has_value());
    // B quantization rounds residuals to even values: max error 1/pixel.
    for (std::size_t p = 0; p < frames[i].pixels(); ++p) {
      EXPECT_LE(std::abs(static_cast<int>(decoded[i]->luma[p]) -
                         static_cast<int>(frames[i].luma[p])),
                1);
    }
  }
}

TEST(Codec, IFramesDominatePayload) {
  auto frames = make_scene(24);
  auto video = encode_video(frames, GopPattern("IBBPBBPBBPBB"));
  // 2 I frames vs 22 inter frames, yet I bytes dominate per-frame size.
  const double i_per_frame = static_cast<double>(video.bytes_of(FrameType::I)) / 2.0;
  const double pb_per_frame =
      static_cast<double>(video.bytes_of(FrameType::P) +
                          video.bytes_of(FrameType::B)) /
      22.0;
  EXPECT_GT(i_per_frame, 4.0 * pb_per_frame);
}

TEST(Codec, LostFrameBreaksChainUntilNextI) {
  auto frames = make_scene(9);
  auto video = encode_video(frames, GopPattern("IPPP"));
  std::vector<bool> lost(frames.size(), false);
  lost[1] = true;  // P frame in GOP 0
  auto decoded = decode_video(video, lost);
  EXPECT_TRUE(decoded[0].has_value());
  EXPECT_FALSE(decoded[1].has_value());
  EXPECT_FALSE(decoded[2].has_value());  // chain broken
  EXPECT_FALSE(decoded[3].has_value());
  EXPECT_TRUE(decoded[4].has_value());  // next I resynchronizes
  EXPECT_TRUE(decoded[8].has_value());
}

TEST(Codec, LostIFrameKillsWholeGop) {
  auto frames = make_scene(8);
  auto video = encode_video(frames, GopPattern("IPPP"));
  std::vector<bool> lost(frames.size(), false);
  lost[0] = true;
  auto decoded = decode_video(video, lost);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(decoded[static_cast<std::size_t>(i)].has_value());
  for (int i = 4; i < 8; ++i) EXPECT_TRUE(decoded[static_cast<std::size_t>(i)].has_value());
}

// ---------------------------------------------------------------------------
// Bitstream container
// ---------------------------------------------------------------------------

TEST(Bitstream, SerializeParseRoundtrip) {
  auto frames = make_scene(12);
  auto video = encode_video(frames, GopPattern("IBBP"));
  auto bytes = serialize_frames(video.frames);
  auto parsed = parse_frames(bytes);
  ASSERT_EQ(parsed.frames.size(), video.frames.size());
  EXPECT_EQ(parsed.bytes_skipped, 0u);
  EXPECT_EQ(parsed.records_corrupted, 0u);
  for (std::size_t i = 0; i < parsed.frames.size(); ++i) {
    EXPECT_EQ(parsed.frames[i].payload, video.frames[i].payload);
    EXPECT_EQ(parsed.frames[i].info.index, video.frames[i].info.index);
    EXPECT_EQ(parsed.frames[i].info.type, video.frames[i].info.type);
  }
}

TEST(Bitstream, ParserResynchronizesAfterCorruption) {
  auto frames = make_scene(8);
  auto video = encode_video(frames, GopPattern("IPPP"));
  auto bytes = serialize_frames(video.frames);
  auto index = build_stream_index(video.frames);
  // Destroy record 2 entirely.
  for (std::size_t i = index[2].begin; i < index[2].end; ++i) bytes[i] = 0xAB;
  auto parsed = parse_frames(bytes);
  EXPECT_EQ(parsed.frames.size(), video.frames.size() - 1);
  for (const auto& f : parsed.frames) EXPECT_NE(f.info.index, 2u);
  EXPECT_GT(parsed.bytes_skipped, 0u);
}

TEST(Bitstream, CrcCatchesPayloadBitflip) {
  auto frames = make_scene(4);
  auto video = encode_video(frames, GopPattern("IPPP"));
  auto bytes = serialize_frames(video.frames);
  auto index = build_stream_index(video.frames);
  bytes[index[1].begin + kFrameHeaderBytes + 5] ^= 0x40;  // payload bit flip
  auto parsed = parse_frames(bytes);
  EXPECT_EQ(parsed.frames.size(), video.frames.size() - 1);
  EXPECT_GE(parsed.records_corrupted, 1u);
}

TEST(Bitstream, IndexMatchesSerialization) {
  auto frames = make_scene(6);
  auto video = encode_video(frames, GopPattern("IBP"));
  auto bytes = serialize_frames(video.frames);
  auto index = build_stream_index(video.frames);
  ASSERT_EQ(index.size(), video.frames.size());
  EXPECT_EQ(index.front().begin, 0u);
  EXPECT_EQ(index.back().end, bytes.size());
  for (std::size_t i = 1; i < index.size(); ++i) {
    EXPECT_EQ(index[i].begin, index[i - 1].end);
  }
}

// ---------------------------------------------------------------------------
// Classifier
// ---------------------------------------------------------------------------

TEST(Classifier, SplitsByFrameType) {
  auto frames = make_scene(24);
  auto video = encode_video(frames, GopPattern("IBBPBBPBBPBB"));
  auto classified = classify(video);
  auto imp = parse_frames(classified.important);
  auto unimp = parse_frames(classified.unimportant);
  EXPECT_EQ(imp.frames.size(), 2u);  // 2 GOPs -> 2 I frames
  EXPECT_EQ(unimp.frames.size(), 22u);
  for (const auto& f : imp.frames) EXPECT_EQ(f.info.type, FrameType::I);
  for (const auto& f : unimp.frames) EXPECT_NE(f.info.type, FrameType::I);
}

TEST(Classifier, IAndPPolicyPromotesPFrames) {
  auto frames = make_scene(12);
  auto video = encode_video(frames, GopPattern("IBBPBB"));
  auto classified = classify(video, ImportancePolicy::IAndPFrames);
  auto imp = parse_frames(classified.important);
  for (const auto& f : imp.frames) EXPECT_NE(f.info.type, FrameType::B);
  EXPECT_EQ(imp.frames.size(), 4u);  // 2 I + 2 P
}

TEST(Classifier, ReassembleMarksMissingFrames) {
  auto frames = make_scene(8);
  auto video = encode_video(frames, GopPattern("IPPP"));
  auto classified = classify(video);
  // Drop the whole unimportant stream.
  auto re = reassemble(classified.important, {}, classified.frame_count);
  ASSERT_EQ(re.lost.size(), 8u);
  EXPECT_FALSE(re.lost[0]);
  EXPECT_FALSE(re.lost[4]);
  for (std::size_t i : {1u, 2u, 3u, 5u, 6u, 7u}) EXPECT_TRUE(re.lost[i]);
}

TEST(Classifier, ImportantRatioReflectsGopStructure) {
  auto frames = make_scene(48);
  auto video = encode_video(frames, GopPattern("IBBPBBPBBPBB"));
  auto classified = classify(video);
  // I frames are few but heavy: ratio lands well inside (0, 1).
  EXPECT_GT(classified.important_ratio(), 0.10);
  EXPECT_LT(classified.important_ratio(), 0.90);
}

}  // namespace
}  // namespace approx::video
