// SSIM: bounds, known behaviours, and its role in the recovery pipeline.
#include <gtest/gtest.h>

#include "common/prng.h"
#include "video/interpolation.h"
#include "video/scene.h"
#include "video/ssim.h"

namespace approx::video {
namespace {

TEST(Ssim, IdenticalFramesScoreOne) {
  SceneGenerator gen(64, 48, 2);
  const Frame f = gen.frame(5);
  EXPECT_DOUBLE_EQ(ssim(f, f), 1.0);
}

TEST(Ssim, UnrelatedNoiseScoresLow) {
  Frame a(64, 48), b(64, 48);
  Rng rng(3);
  fill_random(a.luma.data(), a.luma.size(), rng);
  fill_random(b.luma.data(), b.luma.size(), rng);
  EXPECT_LT(ssim(a, b), 0.2);
}

TEST(Ssim, ConstantLuminanceShiftScoresHigh) {
  // A uniform +10 brightness shift barely changes structure: SSIM should
  // stay high while PSNR would drop hard.
  SceneGenerator gen(64, 48, 4);
  Frame a = gen.frame(0);
  Frame b = a;
  for (auto& v : b.luma) v = static_cast<std::uint8_t>(std::min(255, v + 10));
  EXPECT_GT(ssim(a, b), 0.85);
}

TEST(Ssim, OrderedByDegradationSeverity) {
  SceneGenerator gen(96, 64, 5);
  const Frame original = gen.frame(10);
  Frame mild = original;
  Frame severe = original;
  Rng rng(6);
  for (std::size_t i = 0; i < mild.luma.size(); i += 37) {
    mild.luma[i] = static_cast<std::uint8_t>(mild.luma[i] ^ 0x08);
  }
  for (std::size_t i = 0; i < severe.luma.size(); ++i) {
    severe.luma[i] = static_cast<std::uint8_t>(severe.luma[i] + (rng.byte() & 0x3f));
  }
  EXPECT_GT(ssim(original, mild), ssim(original, severe));
}

TEST(Ssim, SymmetricInArguments) {
  SceneGenerator gen(64, 48, 7);
  const Frame a = gen.frame(0);
  const Frame b = gen.frame(8);
  EXPECT_NEAR(ssim(a, b), ssim(b, a), 1e-12);
}

TEST(Ssim, DimensionValidation) {
  Frame a(32, 32), b(16, 32), tiny(4, 4);
  EXPECT_THROW(ssim(a, b), InvalidArgument);
  EXPECT_THROW(ssim(tiny, tiny), InvalidArgument);
}

TEST(Ssim, InterpolatedFramesScoreWell) {
  SceneGenerator gen(96, 64, 8);
  const Frame f0 = gen.frame(0);
  const Frame f1 = gen.frame(1);
  const Frame f2 = gen.frame(2);
  const Frame recovered = interpolate(f0, f2, 0.5, RecoveryMethod::MotionCompensated);
  EXPECT_GT(ssim(recovered, f1), 0.9);
}

}  // namespace
}  // namespace approx::video
