// Cold-tier spill: TieredVideoStore <-> ApproxStore volume roundtrip, and
// servicing a damaged spilled volume with the generic scrub/repair path.
#include <gtest/gtest.h>

#include <filesystem>

#include "store/scrubber.h"
#include "video/codec.h"
#include "video/scene.h"
#include "video/tiered_store.h"

namespace fs = std::filesystem;

namespace approx::video {
namespace {

core::ApprParams small_params() {
  return core::ApprParams{codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

EncodedVideo make_video(int frames = 24) {
  SceneGenerator gen(96, 64, 21);
  std::vector<Frame> raw;
  for (int t = 0; t < frames; ++t) raw.push_back(gen.frame(t));
  return encode_video(raw, GopPattern("IBBPBBPBBPBB"));
}

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxspill_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  store::PosixIoBackend io_;
  fs::path dir_;
};

TEST_F(SpillTest, SpillLoadRoundtripPreservesVideo) {
  const EncodedVideo video = make_video();
  TieredVideoStore store(small_params(), 4096);
  store.put(video);
  const auto want = store.get();

  store.spill(io_, dir_ / "cold");
  TieredVideoStore back = TieredVideoStore::load_spill(io_, dir_ / "cold");

  EXPECT_EQ(back.stored_frame_count(), store.stored_frame_count());
  EXPECT_EQ(back.stored_width(), store.stored_width());
  EXPECT_EQ(back.stored_height(), store.stored_height());
  EXPECT_EQ(back.stored_gop().str(), store.stored_gop().str());
  EXPECT_EQ(back.important_stream_bytes(), store.important_stream_bytes());
  EXPECT_EQ(back.unimportant_stream_bytes(), store.unimportant_stream_bytes());

  const auto got = back.get();
  ASSERT_EQ(got.frames.size(), want.frames.size());
  for (std::size_t i = 0; i < got.lost.size(); ++i) {
    EXPECT_FALSE(got.lost[i]) << "frame " << i;
  }
}

TEST_F(SpillTest, DamagedSpillIsServicedByGenericScrubRepair) {
  const EncodedVideo video = make_video();
  TieredVideoStore store(small_params(), 4096);
  store.put(video);
  store.spill(io_, dir_ / "cold");

  // Lose a chunk file while the video is cold; the spilled volume is a
  // plain ApproxStore volume, so the storage-layer service repairs it
  // without knowing anything about video.
  store::VolumeStore vol(io_, dir_ / "cold");
  ASSERT_TRUE(fs::remove(vol.node_path(1)));
  // Strict load preserves the old contract: damage throws.
  EXPECT_THROW(
      TieredVideoStore::load_spill(io_, dir_ / "cold", /*allow_degraded=*/false),
      store::StoreError);
  // The default load self-heals: one lost node is within the local
  // tolerance, so the video comes back exact while still degraded on disk.
  {
    TieredVideoStore degraded = TieredVideoStore::load_spill(io_, dir_ / "cold");
    const auto got = degraded.get();
    for (const bool lost : got.lost) EXPECT_FALSE(lost);
  }

  store::ScrubService service(vol);
  const auto outcome = service.repair();
  EXPECT_TRUE(outcome.fully_recovered);

  TieredVideoStore back = TieredVideoStore::load_spill(io_, dir_ / "cold");
  const auto got = back.get();
  for (const bool lost : got.lost) EXPECT_FALSE(lost);
}

TEST_F(SpillTest, NonVideoVolumeIsRejected) {
  const EncodedVideo video = make_video();
  TieredVideoStore store(small_params(), 4096);
  store.put(video);
  store.spill(io_, dir_ / "cold");

  store::VolumeStore vol(io_, dir_ / "cold");
  store::Manifest m = vol.manifest();
  m.extra.erase("video.gop");
  ASSERT_TRUE(m.save(io_, dir_ / "cold").ok());
  EXPECT_THROW(TieredVideoStore::load_spill(io_, dir_ / "cold"), Error);
}

}  // namespace
}  // namespace approx::video
