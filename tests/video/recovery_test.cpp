// Frame interpolation, PSNR and the full tiered-store pipeline
// (the paper's §4.1 experiment in miniature).
#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.h"
#include "video/interpolation.h"
#include "video/psnr.h"
#include "video/scene.h"
#include "video/tiered_store.h"

namespace approx::video {
namespace {

std::vector<Frame> make_scene(int frames, int w = 96, int h = 64,
                              std::uint64_t seed = 21) {
  SceneGenerator gen(w, h, seed);
  std::vector<Frame> out;
  for (int t = 0; t < frames; ++t) out.push_back(gen.frame(t));
  return out;
}

// ---------------------------------------------------------------------------
// PSNR
// ---------------------------------------------------------------------------

TEST(Psnr, IdenticalFramesAreInfinite) {
  Frame f(8, 8);
  EXPECT_TRUE(std::isinf(psnr(f, f)));
}

TEST(Psnr, KnownValue) {
  Frame a(10, 10);
  Frame b(10, 10);
  for (auto& v : b.luma) v = 5;  // uniform error of 5 -> MSE 25
  EXPECT_DOUBLE_EQ(mse(a, b), 25.0);
  EXPECT_NEAR(psnr(a, b), 10.0 * std::log10(255.0 * 255.0 / 25.0), 1e-9);
}

TEST(Psnr, DimensionMismatchThrows) {
  Frame a(4, 4);
  Frame b(5, 4);
  EXPECT_THROW(psnr(a, b), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Motion estimation / interpolation
// ---------------------------------------------------------------------------

TEST(Motion, RecoversPureTranslation) {
  // Frame b is frame a shifted by (3, 2): interior motion vectors must
  // find it.
  SceneGenerator gen(128, 96, 5);
  Frame a = gen.frame(0);
  Frame b(a.width, a.height);
  const int sx = 3, sy = 2;
  for (int y = 0; y < b.height; ++y) {
    for (int x = 0; x < b.width; ++x) {
      const int px = std::clamp(x - sx, 0, a.width - 1);
      const int py = std::clamp(y - sy, 0, a.height - 1);
      b.at(x, y) = a.at(px, py);
    }
  }
  auto field = estimate_motion(a, b, 16, 7);
  int correct = 0;
  int interior = 0;
  const int blocks_x = (a.width + 15) / 16;
  const int blocks_y = (a.height + 15) / 16;
  for (int by = 1; by + 1 < blocks_y; ++by) {
    for (int bx = 1; bx + 1 < blocks_x; ++bx) {
      ++interior;
      const auto mv = field[static_cast<std::size_t>(by * blocks_x + bx)];
      if (mv.dx == sx && mv.dy == sy) ++correct;
    }
  }
  EXPECT_GT(correct, interior * 3 / 4);
}

TEST(Interpolation, MidpointOfSmoothSceneIsAccurate) {
  auto frames = make_scene(3);
  for (const auto method :
       {RecoveryMethod::LinearBlend, RecoveryMethod::MotionCompensated}) {
    Frame mid = interpolate(frames[0], frames[2], 0.5, method);
    EXPECT_GT(psnr(mid, frames[1]), 30.0) << "method " << static_cast<int>(method);
  }
}

TEST(Interpolation, MotionCompensationBeatsBlendOnTranslation) {
  // A fast-translating scene: blending ghosts, motion compensation tracks.
  const int w = 128, h = 96;
  SceneGenerator gen(w, h, 9);
  Frame base = gen.frame(0);
  auto shifted = [&](int shift) {
    Frame f(w, h);
    for (int y = 0; y < h; ++y)
      for (int x = 0; x < w; ++x)
        f.at(x, y) = base.at(std::clamp(x - shift, 0, w - 1), y);
    return f;
  };
  Frame f0 = shifted(0), f1 = shifted(4), f2 = shifted(8);
  const double blend_psnr =
      psnr(interpolate(f0, f2, 0.5, RecoveryMethod::LinearBlend), f1);
  const double mc_psnr =
      psnr(interpolate(f0, f2, 0.5, RecoveryMethod::MotionCompensated), f1);
  EXPECT_GT(mc_psnr, blend_psnr + 3.0);
}

TEST(Interpolation, AlphaEndpointsReproduceAnchors) {
  auto frames = make_scene(2);
  Frame at0 = interpolate(frames[0], frames[1], 0.0, RecoveryMethod::LinearBlend);
  Frame at1 = interpolate(frames[0], frames[1], 1.0, RecoveryMethod::LinearBlend);
  EXPECT_EQ(at0.luma, frames[0].luma);
  EXPECT_EQ(at1.luma, frames[1].luma);
}

// ---------------------------------------------------------------------------
// recover_video pipeline
// ---------------------------------------------------------------------------

TEST(RecoverVideo, NoLossIsPassthrough) {
  auto frames = make_scene(12);
  auto video = encode_video(frames, GopPattern("IPPP"));
  RecoveryStats stats;
  auto out = recover_video(video, std::vector<bool>(12, false),
                           RecoveryMethod::LinearBlend, &stats);
  EXPECT_EQ(stats.decoded_direct, 12u);
  EXPECT_EQ(stats.interpolated, 0u);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_EQ(out[i].luma, frames[i].luma);
}

TEST(RecoverVideo, SingleLostPFrameStaysHighQuality) {
  auto frames = make_scene(16);
  auto video = encode_video(frames, GopPattern("IPPPPPPP"));
  std::vector<bool> lost(16, false);
  lost[3] = true;
  RecoveryStats stats;
  auto out = recover_video(video, lost, RecoveryMethod::MotionCompensated, &stats);
  EXPECT_EQ(stats.interpolated, 1u);
  EXPECT_GT(stats.redecoded, 0u);  // successors re-decoded on recovered ref
  double min_psnr = 1e9;
  for (std::size_t i = 0; i < 16; ++i) {
    min_psnr = std::min(min_psnr, psnr(out[i], frames[i]));
  }
  EXPECT_GT(min_psnr, 30.0);
}

TEST(RecoverVideo, OnePercentLossAveragesAbove35dB) {
  // The paper's quoted operating point: ~1% unimportant-frame loss,
  // recovered quality >= 35 dB on average.
  auto frames = make_scene(100);
  auto video = encode_video(frames, GopPattern("IPPPPPPPPP"));
  std::vector<bool> lost(100, false);
  lost[27] = true;  // one P frame = 1% of frames
  auto out = recover_video(video, lost, RecoveryMethod::MotionCompensated, nullptr);
  double total = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    total += std::min(psnr(out[i], frames[i]), 99.0);
  }
  EXPECT_GT(total / 100.0, 35.0);
}

TEST(RecoverVideo, LostIFrameIsInterpolatedFromNeighbours) {
  auto frames = make_scene(12);
  auto video = encode_video(frames, GopPattern("IPP"));
  std::vector<bool> lost(12, false);
  lost[3] = true;  // second I frame
  RecoveryStats stats;
  auto out = recover_video(video, lost, RecoveryMethod::LinearBlend, &stats);
  EXPECT_GE(stats.interpolated, 1u);
  EXPECT_EQ(out.size(), 12u);
  EXPECT_GT(psnr(out[3], frames[3]), 25.0);
}

TEST(RecoverVideo, AllFramesLostYieldsGray) {
  auto frames = make_scene(4);
  auto video = encode_video(frames, GopPattern("IPPP"));
  RecoveryStats stats;
  auto out = recover_video(video, std::vector<bool>(4, true),
                           RecoveryMethod::LinearBlend, &stats);
  EXPECT_EQ(stats.unrecoverable + stats.interpolated, 4u);
  EXPECT_EQ(out[0].luma[0], 128);
}

// ---------------------------------------------------------------------------
// TieredVideoStore end-to-end
// ---------------------------------------------------------------------------

core::ApprParams small_params(core::Structure structure) {
  return core::ApprParams{codes::Family::RS, 4, 1, 2, 4, structure};
}

TEST(TieredStore, CleanRoundtrip) {
  auto frames = make_scene(24);
  auto video = encode_video(frames, GopPattern("IBBPBBPBBPBB"));
  TieredVideoStore store(small_params(core::Structure::Even), 4096);
  store.put(video);
  auto re = store.get();
  EXPECT_EQ(re.frames.size(), 24u);
  for (const bool l : re.lost) EXPECT_FALSE(l);
}

TEST(TieredStore, WithinLocalToleranceNothingLost) {
  auto frames = make_scene(24);
  auto video = encode_video(frames, GopPattern("IBBPBBPBBPBB"));
  for (const auto structure : {core::Structure::Even, core::Structure::Uneven}) {
    TieredVideoStore store(small_params(structure), 4096);
    store.put(video);
    store.fail_nodes(std::vector<int>{0});
    auto summary = store.repair();
    EXPECT_TRUE(summary.fully_recovered);
    auto re = store.get();
    for (const bool l : re.lost) EXPECT_FALSE(l);
  }
}

TEST(TieredStore, DoubleFailureLosesOnlyUnimportantFrames) {
  auto frames = make_scene(48);
  auto video = encode_video(frames, GopPattern("IBBPBBPBBPBB"));
  for (const auto structure : {core::Structure::Even, core::Structure::Uneven}) {
    TieredVideoStore store(small_params(structure), 4096);
    store.put(video);
    // Two failures inside stripe 0: beyond r=1.
    store.fail_nodes(std::vector<int>{0, 1});
    auto summary = store.repair();
    EXPECT_TRUE(summary.all_important_recovered);
    auto re = store.get();
    // Every I frame survives; the video remains reconstructible.
    GopPattern gop = store.stored_gop();
    for (std::size_t i = 0; i < re.lost.size(); ++i) {
      if (gop.type_at(static_cast<int>(i)) == FrameType::I) {
        EXPECT_FALSE(re.lost[i]) << "I frame " << i << " lost ("
                                 << structure_name(structure) << ")";
      }
    }
    // End-to-end: recover and measure quality.
    std::vector<bool> lost = re.lost;
    EncodedVideo reconstructed;
    reconstructed.width = store.stored_width();
    reconstructed.height = store.stored_height();
    reconstructed.gop = gop;
    reconstructed.frames.resize(frames.size());
    for (auto& f : re.frames) {
      reconstructed.frames[f.info.index] = f;
    }
    // Fill metadata for lost slots so indices stay aligned.
    for (std::size_t i = 0; i < reconstructed.frames.size(); ++i) {
      reconstructed.frames[i].info.index = static_cast<std::uint32_t>(i);
      reconstructed.frames[i].info.type = gop.type_at(static_cast<int>(i));
    }
    auto out = recover_video(reconstructed, lost, RecoveryMethod::LinearBlend);
    double total = 0;
    for (std::size_t i = 0; i < out.size(); ++i) {
      total += std::min(psnr(out[i], frames[i]), 99.0);
    }
    EXPECT_GT(total / static_cast<double>(out.size()), 28.0)
        << structure_name(structure);
  }
}

TEST(TieredStore, TripleFailureStillProtectsImportantData) {
  auto frames = make_scene(24);
  auto video = encode_video(frames, GopPattern("IBBPBB"));
  TieredVideoStore store(small_params(core::Structure::Uneven), 4096);
  store.put(video);
  store.fail_nodes(std::vector<int>{0, 1, 2});
  auto summary = store.repair();
  EXPECT_TRUE(summary.all_important_recovered);
}

TEST(TieredStore, ChunkingHandlesLargeStreams) {
  auto frames = make_scene(60, 128, 96);
  auto video = encode_video(frames, GopPattern("IBBPBB"));
  // Tiny block size forces multiple chunks.
  TieredVideoStore store(small_params(core::Structure::Even), 512);
  store.put(video);
  EXPECT_GT(store.chunk_count(), 1u);
  auto re = store.get();
  EXPECT_EQ(re.frames.size(), 60u);
  for (const bool l : re.lost) EXPECT_FALSE(l);
}

}  // namespace
}  // namespace approx::video
