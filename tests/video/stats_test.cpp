// Stream statistics and parameter suggestion.
#include <gtest/gtest.h>

#include "video/scene.h"
#include "video/stats.h"
#include "video/tiered_store.h"

namespace approx::video {
namespace {

EncodedVideo sample_video(int frames = 48, const char* gop = "IBBPBBPBBPBB") {
  SceneGenerator gen(96, 64, 17);
  std::vector<Frame> raw;
  for (int t = 0; t < frames; ++t) raw.push_back(gen.frame(t));
  return encode_video(raw, GopPattern(gop));
}

TEST(Stats, CountsAndBytesAreConsistent) {
  auto video = sample_video();
  const auto s = analyze(video);
  EXPECT_EQ(s.frames, 48u);
  EXPECT_EQ(s.gops, 4u);
  EXPECT_EQ(s.frames_i, 4u);
  EXPECT_EQ(s.frames_p, 12u);
  EXPECT_EQ(s.frames_b, 32u);
  EXPECT_EQ(s.bytes_total, s.bytes_i + s.bytes_p + s.bytes_b);
  EXPECT_EQ(s.bytes_total, video.total_bytes());
  EXPECT_GT(s.mean_gop_bytes, 0);
  EXPECT_GE(s.max_frame_bytes, static_cast<double>(s.bytes_i) / s.frames_i);
}

TEST(Stats, IByteRatioMatchesStreamComposition) {
  auto video = sample_video();
  const auto s = analyze(video);
  EXPECT_NEAR(s.i_byte_ratio(),
              static_cast<double>(video.bytes_of(FrameType::I)) /
                  static_cast<double>(video.total_bytes()),
              1e-12);
}

TEST(Stats, SuggestionCoversTheImportantShare) {
  auto video = sample_video();
  const auto s = analyze(video);
  const auto params = suggest_params(s, ImportancePolicy::IFramesOnly);
  EXPECT_NO_THROW(params.validate());
  // The chosen 1/h must cover the important share (with headroom).
  EXPECT_GE(1.0 / params.h, s.i_byte_ratio());
  // And the suggested layout must actually hold the stream.
  TieredVideoStore store(params, 6720);  // divisible by any h <= 8
  EXPECT_NO_THROW(store.put(video));
  auto re = store.get();
  for (const bool l : re.lost) EXPECT_FALSE(l);
}

TEST(Stats, PromotingPolicyLowersH) {
  auto video = sample_video();
  const auto s = analyze(video);
  const auto i_only = suggest_params(s, ImportancePolicy::IFramesOnly);
  const auto i_and_p = suggest_params(s, ImportancePolicy::IAndPFrames);
  EXPECT_GE(i_only.h, i_and_p.h);
}

TEST(Stats, AllIntraStreamForcesSmallestH) {
  auto video = sample_video(12, "I");  // every frame is an I frame
  const auto s = analyze(video);
  EXPECT_EQ(s.frames_i, 12u);
  const auto params = suggest_params(s, ImportancePolicy::IFramesOnly);
  EXPECT_EQ(params.h, 2);  // nothing smaller exists; caller must split tiers
}

TEST(Stats, EmptyVideoIsHandled) {
  EncodedVideo video;
  const auto s = analyze(video);
  EXPECT_EQ(s.frames, 0u);
  EXPECT_EQ(s.gops, 0u);
  EXPECT_DOUBLE_EQ(s.i_byte_ratio(), 0.0);
  const auto params = suggest_params(s, ImportancePolicy::IFramesOnly);
  EXPECT_NO_THROW(params.validate());
  EXPECT_EQ(params.h, 8);  // no important data: cheapest layout allowed
}

}  // namespace
}  // namespace approx::video
