// Robustness: bitstream parser fuzzing (random corruption never crashes,
// never accepts a damaged record) and store-level degraded reads.
#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/prng.h"
#include "video/scene.h"
#include "video/tiered_store.h"

namespace approx::video {
namespace {

EncodedVideo sample_video(int frames = 36) {
  SceneGenerator gen(96, 64, 51);
  std::vector<Frame> raw;
  for (int t = 0; t < frames; ++t) raw.push_back(gen.frame(t));
  return encode_video(raw, GopPattern("IBBPBB"));
}

// ---------------------------------------------------------------------------
// Parser fuzzing
// ---------------------------------------------------------------------------

TEST(BitstreamFuzz, RandomCorruptionNeverAcceptsDamage) {
  auto video = sample_video();
  const auto clean = serialize_frames(video.frames);

  // Index payloads by frame id for validation of surviving records.
  std::vector<std::vector<std::uint8_t>> payloads;
  for (const auto& f : video.frames) payloads.push_back(f.payload);

  Rng rng(99);
  for (int trial = 0; trial < 60; ++trial) {
    auto bytes = clean;
    // Corrupt a random region: bit flips, zero runs, or truncation.
    const int mode = static_cast<int>(rng.below(3));
    if (mode == 0) {
      for (int i = 0; i < 40; ++i) {
        bytes[rng.below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
      }
    } else if (mode == 1) {
      const std::size_t start = rng.below(bytes.size());
      const std::size_t len = std::min(bytes.size() - start,
                                       static_cast<std::size_t>(rng.below(4000)));
      std::fill(bytes.begin() + static_cast<long>(start),
                bytes.begin() + static_cast<long>(start + len), 0);
    } else {
      bytes.resize(rng.below(bytes.size()) + 1);
    }

    const auto parsed = parse_frames(bytes);  // must not crash or hang
    for (const auto& f : parsed.frames) {
      // Every record the parser accepts must be byte-identical to a real
      // frame (CRC makes forgery astronomically unlikely).
      ASSERT_LT(f.info.index, payloads.size());
      EXPECT_EQ(f.payload, payloads[f.info.index]) << "trial " << trial;
    }
  }
}

TEST(BitstreamFuzz, GarbageInputYieldsNothing) {
  Rng rng(7);
  std::vector<std::uint8_t> garbage(100000);
  fill_random(garbage.data(), garbage.size(), rng);
  const auto parsed = parse_frames(garbage);
  // A random 4-byte magic match is possible but the CRC gate must hold.
  EXPECT_TRUE(parsed.frames.empty());
}

TEST(BitstreamFuzz, EmptyAndTinyInputs) {
  EXPECT_TRUE(parse_frames({}).frames.empty());
  std::vector<std::uint8_t> tiny = {0x41, 0x46};
  EXPECT_TRUE(parse_frames(tiny).frames.empty());
}

// ---------------------------------------------------------------------------
// Store-level degraded reads
// ---------------------------------------------------------------------------

TEST(DegradedGet, HealthyStoreReadsEverything) {
  auto video = sample_video();
  TieredVideoStore store({codes::Family::RS, 4, 1, 2, 4, core::Structure::Even},
                         4096);
  store.put(video);
  auto re = store.get_degraded();
  EXPECT_EQ(re.frames.size(), video.frames.size());
  for (const bool l : re.lost) EXPECT_FALSE(l);
}

TEST(DegradedGet, ServesIFramesThroughTripleFailureWithoutRepair) {
  auto video = sample_video();
  TieredVideoStore store({codes::Family::RS, 4, 1, 2, 4, core::Structure::Even},
                         4096);
  store.put(video);
  store.fail_nodes(std::vector<int>{0, 1, 2});
  auto re = store.get_degraded();
  GopPattern gop = store.stored_gop();
  std::size_t lost = 0;
  for (std::size_t i = 0; i < re.lost.size(); ++i) {
    if (gop.type_at(static_cast<int>(i)) == FrameType::I) {
      EXPECT_FALSE(re.lost[i]) << "I frame " << i;
    }
    lost += re.lost[i] ? 1 : 0;
  }
  EXPECT_GT(lost, 0u);  // unimportant frames on the failed nodes are holes
}

TEST(DegradedGet, WithinLocalToleranceLosesNothing) {
  auto video = sample_video();
  for (const auto structure : {core::Structure::Even, core::Structure::Uneven}) {
    TieredVideoStore store({codes::Family::STAR, 5, 1, 2, 4, structure}, 4800);
    store.put(video);
    store.fail_nodes(std::vector<int>{3});
    auto re = store.get_degraded();
    for (const bool l : re.lost) EXPECT_FALSE(l) << structure_name(structure);
  }
}

TEST(DegradedGet, DoesNotModifyChunks) {
  auto video = sample_video();
  TieredVideoStore store({codes::Family::RS, 4, 1, 2, 4, core::Structure::Even},
                         4096);
  store.put(video);
  store.fail_nodes(std::vector<int>{0, 1});
  auto first = store.get_degraded();
  auto second = store.get_degraded();
  ASSERT_EQ(first.frames.size(), second.frames.size());
  for (std::size_t i = 0; i < first.frames.size(); ++i) {
    EXPECT_EQ(first.frames[i].payload, second.frames[i].payload);
  }
  // And a subsequent real repair still works.
  auto summary = store.repair();
  EXPECT_TRUE(summary.all_important_recovered);
}

}  // namespace
}  // namespace approx::video
