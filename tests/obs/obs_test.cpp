// Tests for the approx::obs instrumentation layer: registry instruments
// under concurrent recording, histogram percentile extraction, trace-span
// nesting, and the JSON exporter (validated with a minimal in-test parser).
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace approx::obs {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects/arrays/strings/numbers/bools/null), enough
// to round-trip the exporter output.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON document";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return JsonValue{object()};
      case '[': return JsonValue{array()};
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) expect_raw(*p);
  }
  void expect_raw(char c) {
    ASSERT_LT(pos_, s_.size());
    EXPECT_EQ(s_[pos_], c);
    ++pos_;
  }

  JsonObject object() {
    JsonObject out;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      std::string key = string();
      expect(':');
      out.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  JsonArray array() {
    JsonArray out;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        EXPECT_LT(pos_, s_.size()) << "dangling escape";
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            EXPECT_LE(pos_ + 4, s_.size());
            if (pos_ + 4 > s_.size()) break;
            out += static_cast<char>(
                std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    expect_raw('"');
    return out;
  }

  double number() {
    skip_ws();
    std::size_t used = 0;
    const double d = std::stod(s_.substr(pos_), &used);
    EXPECT_GT(used, 0u);
    pos_ += used;
    return d;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsFromThreadPool) {
  Counter plain;
  ShardedCounter sharded;
  constexpr std::size_t kIters = 200000;
  ThreadPool::global().parallel_for(0, kIters, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      plain.add();
      sharded.add(2);
    }
  });
  EXPECT_EQ(plain.value(), kIters);
  EXPECT_EQ(sharded.value(), 2 * kIters);
  plain.reset();
  sharded.reset();
  EXPECT_EQ(plain.value(), 0u);
  EXPECT_EQ(sharded.value(), 0u);
}

TEST(ObsRegistry, SameNameSameInstrument) {
  Counter& a = registry().counter("test.same_name");
  Counter& b = registry().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  a.reset();
}

TEST(ObsHistogram, ConcurrentRecordKeepsCountAndSum) {
  Histogram h;
  constexpr std::size_t kIters = 100000;
  ThreadPool::global().parallel_for(0, kIters, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) h.record(1.0);
  });
  EXPECT_EQ(h.count(), kIters);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kIters));
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(ObsHistogram, BucketBoundsAreConsistent) {
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::lower_bound(i), Histogram::upper_bound(i));
    // The upper bound of a bucket lands in that bucket (intervals are
    // half-open on the left).
    EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(i)), i);
  }
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(ObsHistogram, PercentilesApproximateUniformData) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  // One bucket spans a factor of 2^(1/4) ~ 1.19; the geometric-midpoint
  // estimate is within ~19% of the exact order statistic.
  EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.2);
  EXPECT_NEAR(h.percentile(0.9), 900.0, 900.0 * 0.2);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 * 0.2);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(ObsHistogram, PercentileOfPointMassIsInItsBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(42.0);
  const int b = Histogram::bucket_of(42.0);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, Histogram::lower_bound(b));
    EXPECT_LE(q, Histogram::upper_bound(b));
  }
}

TEST(ObsGauge, StoresLastValue) {
  Gauge g;
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(ObsSpanLog, RecordsNestedSpansWithDepth) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  {
    APPROX_OBS_SPAN(outer, "test.outer");
    {
      APPROX_OBS_SPAN(inner, "test.inner");
      (void)0;
    }
    {
      APPROX_OBS_SPAN(inner2, "test.inner");
      (void)0;
    }
  }
  SpanLog::set_enabled(false);
  const auto events = SpanLog::snapshot();
  SpanLog::clear();

#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 3u);
  // snapshot() orders by start time: outer first, then the two inners.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "test.inner");
  EXPECT_EQ(events[2].depth, 1);
  // Containment: the outer span covers both inner spans.  start_us and
  // dur_us come from separate clock reads, so end times carry sub-µs
  // jitter; allow a small epsilon.
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us + 5.0,
            events[2].start_us + events[2].dur_us);
  EXPECT_GE(events[0].dur_us + 5.0, events[1].dur_us + events[2].dur_us);
  // The per-stage histograms saw the same spans.
  EXPECT_GE(registry().histogram("span.test.outer.us").count(), 1u);
  EXPECT_GE(registry().histogram("span.test.inner.us").count(), 2u);
#endif
}

TEST(ObsSpanLog, DisabledCollectionStillFeedsHistograms) {
  SpanLog::clear();
  ASSERT_FALSE(SpanLog::enabled());
  const std::uint64_t before =
      registry().histogram("span.test.quiet.us").count();
  {
    APPROX_OBS_SPAN(sp, "test.quiet");
    (void)0;
  }
  EXPECT_TRUE(SpanLog::snapshot().empty());
#ifndef APPROX_OBS_OFF
  EXPECT_EQ(registry().histogram("span.test.quiet.us").count(), before + 1);
#endif
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(ObsJson, WriterEscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.key("text");
  w.value("a\"b\\c\nd");
  w.key("list");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.value(std::uint64_t{18446744073709551615ull});
  w.end_array();
  w.end_object();
  JsonValue doc = JsonParser(w.str()).parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.object().at("text").string(), "a\"b\\c\nd");
  EXPECT_EQ(doc.object().at("list").array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.object().at("list").array()[0].number(), 1.5);
}

TEST(ObsJson, RegistryDumpRoundTrips) {
  registry().counter("test.json.counter").add(41);
  registry().counter("test.json.counter").add(1);
  registry().sharded_counter("test.json.sharded").add(5);
  registry().gauge("test.json.gauge").set(0.125);
  Histogram& h = registry().histogram("test.json.hist");
  h.reset();
  for (int i = 0; i < 10; ++i) h.record(8.0);

  const std::string dump = registry().to_json();
  JsonValue doc = JsonParser(dump).parse();
  ASSERT_TRUE(doc.is_object());
  const JsonObject& top = doc.object();

  const JsonObject& counters = top.at("counters").object();
  EXPECT_DOUBLE_EQ(counters.at("test.json.counter").number(), 42.0);
  // Sharded counters fold into the counters section.
  EXPECT_DOUBLE_EQ(counters.at("test.json.sharded").number(), 5.0);

  EXPECT_DOUBLE_EQ(top.at("gauges").object().at("test.json.gauge").number(),
                   0.125);

  const JsonObject& hist = top.at("histograms").object().at("test.json.hist").object();
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 10.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 80.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").number(), 8.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 8.0);
  // Bucket entries are [upper_bound, count] pairs summing to the count.
  double bucket_total = 0;
  for (const auto& pair : hist.at("buckets").array()) {
    ASSERT_EQ(pair.array().size(), 2u);
    bucket_total += pair.array()[1].number();
  }
  EXPECT_DOUBLE_EQ(bucket_total, 10.0);

  // The human exporter mentions every instrument too.
  const std::string text = registry().to_text();
  EXPECT_NE(text.find("test.json.counter"), std::string::npos);
  EXPECT_NE(text.find("test.json.hist"), std::string::npos);
}

TEST(ObsRegistry, ResetZeroesEveryInstrument) {
  Counter& c = registry().counter("test.reset.counter");
  Histogram& h = registry().histogram("test.reset.hist");
  c.add(3);
  h.record(1.0);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

}  // namespace
}  // namespace approx::obs
