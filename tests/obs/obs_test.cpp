// Tests for the approx::obs instrumentation layer: registry instruments
// under concurrent recording, histogram percentile extraction, trace-span
// nesting and identity propagation, slow-op accounting, and the JSON
// exporters (validated with the shared test JSON parser).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "../support/test_json.h"
#include "common/thread_pool.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slow_ops.h"
#include "obs/span.h"

namespace approx::obs {
namespace {

using testsupport::JsonArray;
using testsupport::JsonObject;
using testsupport::JsonParser;
using testsupport::JsonValue;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

TEST(ObsCounter, ConcurrentIncrementsFromThreadPool) {
  Counter plain;
  ShardedCounter sharded;
  constexpr std::size_t kIters = 200000;
  ThreadPool::global().parallel_for(0, kIters, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      plain.add();
      sharded.add(2);
    }
  });
  EXPECT_EQ(plain.value(), kIters);
  EXPECT_EQ(sharded.value(), 2 * kIters);
  plain.reset();
  sharded.reset();
  EXPECT_EQ(plain.value(), 0u);
  EXPECT_EQ(sharded.value(), 0u);
}

TEST(ObsRegistry, SameNameSameInstrument) {
  Counter& a = registry().counter("test.same_name");
  Counter& b = registry().counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.add(7);
  EXPECT_EQ(b.value(), 7u);
  a.reset();
}

TEST(ObsHistogram, ConcurrentRecordKeepsCountAndSum) {
  Histogram h;
  constexpr std::size_t kIters = 100000;
  ThreadPool::global().parallel_for(0, kIters, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) h.record(1.0);
  });
  EXPECT_EQ(h.count(), kIters);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kIters));
  EXPECT_DOUBLE_EQ(h.max(), 1.0);
}

TEST(ObsHistogram, BucketBoundsAreConsistent) {
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    EXPECT_LT(Histogram::lower_bound(i), Histogram::upper_bound(i));
    // The upper bound of a bucket lands in that bucket (intervals are
    // half-open on the left).
    EXPECT_EQ(Histogram::bucket_of(Histogram::upper_bound(i)), i);
  }
  EXPECT_EQ(Histogram::bucket_of(0.0), 0);
  EXPECT_EQ(Histogram::bucket_of(-3.0), 0);
  EXPECT_EQ(Histogram::bucket_of(1e300), Histogram::kBuckets - 1);
}

TEST(ObsHistogram, PercentilesApproximateUniformData) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.record(static_cast<double>(v));
  // One bucket spans a factor of 2^(1/4) ~ 1.19; the geometric-midpoint
  // estimate is within ~19% of the exact order statistic.
  EXPECT_NEAR(h.percentile(0.5), 500.0, 500.0 * 0.2);
  EXPECT_NEAR(h.percentile(0.9), 900.0, 900.0 * 0.2);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 * 0.2);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
}

TEST(ObsHistogram, PercentileOfPointMassIsInItsBucket) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(42.0);
  const int b = Histogram::bucket_of(42.0);
  for (const double p : {0.0, 0.5, 0.99, 1.0}) {
    const double q = h.percentile(p);
    EXPECT_GE(q, Histogram::lower_bound(b));
    EXPECT_LE(q, Histogram::upper_bound(b));
  }
}

TEST(ObsGauge, StoresLastValue) {
  Gauge g;
  g.set(0.25);
  g.set(0.75);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

TEST(ObsSpanLog, RecordsNestedSpansWithDepth) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  {
    APPROX_OBS_SPAN(outer, "test.outer");
    {
      APPROX_OBS_SPAN(inner, "test.inner");
      (void)0;
    }
    {
      APPROX_OBS_SPAN(inner2, "test.inner");
      (void)0;
    }
  }
  SpanLog::set_enabled(false);
  const auto events = SpanLog::snapshot();
  SpanLog::clear();

#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 3u);
  // snapshot() orders by start time: outer first, then the two inners.
  EXPECT_EQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].depth, 0);
  EXPECT_EQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].depth, 1);
  EXPECT_EQ(events[2].name, "test.inner");
  EXPECT_EQ(events[2].depth, 1);
  // Containment: the outer span covers both inner spans.  start_us and
  // dur_us come from separate clock reads, so end times carry sub-µs
  // jitter; allow a small epsilon.
  EXPECT_LE(events[0].start_us, events[1].start_us);
  EXPECT_GE(events[0].start_us + events[0].dur_us + 5.0,
            events[2].start_us + events[2].dur_us);
  EXPECT_GE(events[0].dur_us + 5.0, events[1].dur_us + events[2].dur_us);
  // The per-stage histograms saw the same spans.
  EXPECT_GE(registry().histogram("span.test.outer.us").count(), 1u);
  EXPECT_GE(registry().histogram("span.test.inner.us").count(), 2u);
#endif
}

TEST(ObsSpanLog, DisabledCollectionStillFeedsHistograms) {
  SpanLog::clear();
  ASSERT_FALSE(SpanLog::enabled());
  const std::uint64_t before =
      registry().histogram("span.test.quiet.us").count();
  {
    APPROX_OBS_SPAN(sp, "test.quiet");
    (void)0;
  }
  EXPECT_TRUE(SpanLog::snapshot().empty());
#ifndef APPROX_OBS_OFF
  EXPECT_EQ(registry().histogram("span.test.quiet.us").count(), before + 1);
#endif
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

TEST(ObsJson, WriterEscapesAndNests) {
  JsonWriter w;
  w.begin_object();
  w.key("text");
  w.value("a\"b\\c\nd");
  w.key("list");
  w.begin_array();
  w.value(1.5);
  w.value(true);
  w.value(std::uint64_t{18446744073709551615ull});
  w.end_array();
  w.end_object();
  JsonValue doc = JsonParser(w.str()).parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.object().at("text").string(), "a\"b\\c\nd");
  EXPECT_EQ(doc.object().at("list").array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.object().at("list").array()[0].number(), 1.5);
}

TEST(ObsJson, RegistryDumpRoundTrips) {
  registry().counter("test.json.counter").add(41);
  registry().counter("test.json.counter").add(1);
  registry().sharded_counter("test.json.sharded").add(5);
  registry().gauge("test.json.gauge").set(0.125);
  Histogram& h = registry().histogram("test.json.hist");
  h.reset();
  for (int i = 0; i < 10; ++i) h.record(8.0);

  const std::string dump = registry().to_json();
  JsonValue doc = JsonParser(dump).parse();
  ASSERT_TRUE(doc.is_object());
  const JsonObject& top = doc.object();

  const JsonObject& counters = top.at("counters").object();
  EXPECT_DOUBLE_EQ(counters.at("test.json.counter").number(), 42.0);
  // Sharded counters fold into the counters section.
  EXPECT_DOUBLE_EQ(counters.at("test.json.sharded").number(), 5.0);

  EXPECT_DOUBLE_EQ(top.at("gauges").object().at("test.json.gauge").number(),
                   0.125);

  const JsonObject& hist = top.at("histograms").object().at("test.json.hist").object();
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 10.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 80.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").number(), 8.0);
  EXPECT_DOUBLE_EQ(hist.at("max").number(), 8.0);
  // Bucket entries are [upper_bound, count] pairs summing to the count.
  double bucket_total = 0;
  for (const auto& pair : hist.at("buckets").array()) {
    ASSERT_EQ(pair.array().size(), 2u);
    bucket_total += pair.array()[1].number();
  }
  EXPECT_DOUBLE_EQ(bucket_total, 10.0);

  // The human exporter mentions every instrument too.
  const std::string text = registry().to_text();
  EXPECT_NE(text.find("test.json.counter"), std::string::npos);
  EXPECT_NE(text.find("test.json.hist"), std::string::npos);
}

TEST(ObsRegistry, ResetZeroesEveryInstrument) {
  Counter& c = registry().counter("test.reset.counter");
  Histogram& h = registry().histogram("test.reset.hist");
  c.add(3);
  h.record(1.0);
  registry().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsHistogram, P999ReportedInJsonAndText) {
  Histogram& h = registry().histogram("test.p999.hist");
  h.reset();
  // 1% of the mass at 1e6: p50/p99 sit in the low bucket, p999 must land
  // in the outlier bucket.
  for (int i = 0; i < 990; ++i) h.record(1.0);
  for (int i = 0; i < 10; ++i) h.record(1e6);

  JsonValue doc = JsonParser(registry().to_json()).parse();
  const JsonObject& hist =
      doc.object().at("histograms").object().at("test.p999.hist").object();
  const double p50 = hist.at("p50").number();
  const double p999 = hist.at("p999").number();
  EXPECT_NEAR(p999, 1e6, 2e5);
  EXPECT_LE(p50, hist.at("p99").number());
  EXPECT_LE(hist.at("p99").number(), p999);
  EXPECT_LE(p999, hist.at("max").number());

  EXPECT_NE(registry().to_text().find("p999="), std::string::npos);
  h.reset();
}

// ---------------------------------------------------------------------------
// Trace identity
// ---------------------------------------------------------------------------

TEST(ObsTrace, SpansInheritTraceAcrossThreadPoolHops) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  {
    APPROX_OBS_SPAN(root, "test.trace.root");
    ThreadPool::global()
        .submit([] { APPROX_OBS_SPAN(child, "test.trace.child"); })
        .wait();
    ThreadPool::global().parallel_for(0, 4, [](std::size_t, std::size_t) {
      APPROX_OBS_SPAN(chunk, "test.trace.chunk");
    });
  }
  SpanLog::set_enabled(false);
  const auto events = SpanLog::snapshot();
  SpanLog::clear();

#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(events.empty());
#else
  const SpanEvent* root = nullptr;
  for (const auto& ev : events) {
    if (ev.name == "test.trace.root") root = &ev;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_NE(root->trace_id, 0u);
  EXPECT_EQ(root->parent_id, 0u);  // trace root
  int children = 0;
  for (const auto& ev : events) {
    EXPECT_EQ(ev.trace_id, root->trace_id) << ev.name;
    if (ev.name != "test.trace.root") {
      // submit() and parallel_for() both install the submitter's context,
      // so every hop parents directly to the root span.
      EXPECT_EQ(ev.parent_id, root->span_id) << ev.name;
      ++children;
    }
  }
  EXPECT_GE(children, 2);  // the submitted child plus >= 1 chunk
#endif
}

TEST(ObsTrace, OutermostSpansRootDistinctTraces) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  {
    APPROX_OBS_SPAN(a, "test.trace.a");
    (void)0;
  }
  {
    APPROX_OBS_SPAN(b, "test.trace.b");
    (void)0;
  }
  SpanLog::set_enabled(false);
  const auto events = SpanLog::snapshot();
  SpanLog::clear();
#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].trace_id, events[1].trace_id);
  EXPECT_EQ(events[0].parent_id, 0u);
  EXPECT_EQ(events[1].parent_id, 0u);
#endif
}

TEST(ObsTrace, ContextApiIsUsableRegardlessOfObsOff) {
  // The TraceContext primitives live in common and must compile and
  // behave identically with APPROX_OBS_OFF: only the *span* layer is
  // compiled out, not the context plumbing.
  EXPECT_FALSE(approx::current_trace_context().active());
  {
    approx::TraceContextScope scope({123, 456});
    EXPECT_TRUE(approx::current_trace_context().active());
    EXPECT_EQ(approx::current_trace_context().trace_id, 123u);
    EXPECT_EQ(approx::current_trace_context().parent_id, 456u);
    TraceContext seen;
    ThreadPool::global()
        .submit([&] { seen = approx::current_trace_context(); })
        .wait();
    EXPECT_EQ(seen.trace_id, 123u);
    EXPECT_EQ(seen.parent_id, 456u);
  }
  EXPECT_FALSE(approx::current_trace_context().active());
  // Trace and span ids draw from one shared sequence, so they never
  // collide; sequence the calls explicitly (macro argument evaluation
  // order is unspecified).
  const std::uint64_t trace_id = approx::next_trace_id();
  const std::uint64_t span_id = approx::next_span_id();
  EXPECT_LT(trace_id, span_id);
}

// ---------------------------------------------------------------------------
// Buffer saturation and snapshot stability
// ---------------------------------------------------------------------------

TEST(ObsSpanLog, BufferSaturationCountsEveryDrop) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  constexpr std::size_t kOverflow = 10;
  // A fresh thread gets a fresh (empty) per-thread buffer, so the exact
  // capacity boundary is observable no matter what earlier tests recorded
  // on this thread.
  std::thread recorder([] {
    for (std::size_t i = 0; i < SpanLog::kMaxEventsPerThread + kOverflow; ++i) {
      APPROX_OBS_SPAN(sp, "test.saturate");
      (void)0;
    }
  });
  recorder.join();
  SpanLog::set_enabled(false);
  const auto events = SpanLog::snapshot();
  const std::uint64_t dropped = SpanLog::dropped();
  SpanLog::clear();
#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(events.empty());
  EXPECT_EQ(dropped, 0u);
#else
  std::size_t saturate_events = 0;
  for (const auto& ev : events) {
    if (ev.name == "test.saturate") ++saturate_events;
  }
  EXPECT_EQ(saturate_events, SpanLog::kMaxEventsPerThread);
  EXPECT_EQ(dropped, kOverflow);
  // clear() resets the drop counter along with the buffers.
  EXPECT_EQ(SpanLog::dropped(), 0u);
#endif
}

TEST(ObsSpanLog, SnapshotStaysOrderedWithExitedThreads) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  for (int t = 0; t < 3; ++t) {
    std::thread worker([] {
      for (int i = 0; i < 5; ++i) {
        APPROX_OBS_SPAN(sp, "test.exited");
        (void)0;
      }
    });
    worker.join();  // buffer outlives the thread
  }
  {
    APPROX_OBS_SPAN(sp, "test.live");
    (void)0;
  }
  SpanLog::set_enabled(false);
  const auto events = SpanLog::snapshot();
  SpanLog::clear();
#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(events.empty());
#else
  ASSERT_EQ(events.size(), 16u);  // 3 exited threads * 5 + 1 live
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_us, events[i].start_us);
  }
#endif
}

// ---------------------------------------------------------------------------
// Chrome trace-event export
// ---------------------------------------------------------------------------

TEST(ObsSpanLog, ChromeJsonExportsCausalTree) {
  SpanLog::clear();
  SpanLog::set_enabled(true);
  {
    APPROX_OBS_SPAN(root, "test.chrome.root");
    {
      APPROX_OBS_SPAN(inner, "test.chrome.inner");
      (void)0;
    }
  }
  SpanLog::set_enabled(false);
  const std::string json = SpanLog::to_chrome_json();
  SpanLog::clear();

  JsonValue doc = JsonParser(json).parse();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.object().at("displayTimeUnit").string(), "ms");
  EXPECT_DOUBLE_EQ(doc.object().at("dropped").number(), 0.0);
  const JsonArray& traced = doc.object().at("traceEvents").array();
#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(traced.empty());
#else
  ASSERT_EQ(traced.size(), 2u);
  const JsonObject* root = nullptr;
  const JsonObject* inner = nullptr;
  for (const auto& ev : traced) {
    const JsonObject& o = ev.object();
    EXPECT_EQ(o.at("ph").string(), "X");
    EXPECT_EQ(o.at("cat").string(), "approx");
    if (o.at("name").string() == "test.chrome.root") root = &o;
    if (o.at("name").string() == "test.chrome.inner") inner = &o;
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(inner, nullptr);
  const JsonObject& rargs = root->at("args").object();
  const JsonObject& iargs = inner->at("args").object();
  // One trace, stitched by parent ids; pid groups the trace for the viewer.
  EXPECT_EQ(iargs.at("trace").number(), rargs.at("trace").number());
  EXPECT_EQ(iargs.at("parent").number(), rargs.at("span").number());
  EXPECT_DOUBLE_EQ(rargs.at("parent").number(), 0.0);
  EXPECT_EQ(root->at("pid").number(), rargs.at("trace").number());
  EXPECT_DOUBLE_EQ(rargs.at("depth").number(), 0.0);
  EXPECT_DOUBLE_EQ(iargs.at("depth").number(), 1.0);
  // Containment in exported timestamps too.
  EXPECT_LE(root->at("ts").number(), inner->at("ts").number());
#endif
}

// ---------------------------------------------------------------------------
// Slow-op accounting
// ---------------------------------------------------------------------------

TEST(ObsSlowOps, ThresholdGatesCounterAndTable) {
  SlowOps::clear();
  const double saved = SlowOps::threshold_us();
  SlowOps::set_threshold_us(1000.0);
  Counter& c = registry().counter("test.slowop.slow");
  c.reset();

  SlowOps::note("test.slowop", 7, 500.0);   // below threshold: invisible
  SlowOps::note("test.slowop", 8, 2000.0);
  SlowOps::note("test.slowop", 9, 5000.0);

  EXPECT_EQ(c.value(), 2u);
  const auto top = SlowOps::top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].trace_id, 9u);  // slowest first
  EXPECT_DOUBLE_EQ(top[0].dur_us, 5000.0);
  EXPECT_EQ(top[1].trace_id, 8u);

  SlowOps::set_threshold_us(saved);
  SlowOps::clear();
  c.reset();
}

TEST(ObsSlowOps, TableKeepsTheWorstWhenFull) {
  SlowOps::clear();
  const double saved = SlowOps::threshold_us();
  SlowOps::set_threshold_us(1.0);
  for (std::size_t i = 0; i < SlowOps::kMaxEntries + 5; ++i) {
    SlowOps::note("test.slowop.full", i, 10.0 + static_cast<double>(i));
  }
  const auto top = SlowOps::top(SlowOps::kMaxEntries + 5);
  ASSERT_EQ(top.size(), SlowOps::kMaxEntries);
  // The five smallest durations were evicted; the worst survived, sorted.
  EXPECT_DOUBLE_EQ(top.front().dur_us,
                   10.0 + static_cast<double>(SlowOps::kMaxEntries + 4));
  EXPECT_DOUBLE_EQ(top.back().dur_us, 15.0);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].dur_us, top[i].dur_us);
  }
  SlowOps::set_threshold_us(saved);
  SlowOps::clear();
  registry().counter("test.slowop.full.slow").reset();
}

}  // namespace
}  // namespace approx::obs
