// Golden encode vectors: one (k, r) per code family, encoded from a fixed
// arithmetic byte pattern (independent of any PRNG implementation), with the
// resulting parity bytes pinned as checked-in constants.  If these tests
// fail while the differential kernel suite passes, a *generator matrix* (or
// construction) changed; if both fail, a kernel regressed.  Run under every
// backend so all ISA paths are held to the same pinned outputs.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "codes/array_codes.h"
#include "codes/crs_code.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"
#include "common/buffer.h"
#include "common/crc32.h"
#include "kernels/dispatch.h"

namespace approx {
namespace {

// Elements are 48 bytes: one full 32-byte AVX2 lane plus a 16-byte tail, so
// the goldens cover both the vector main loop and the remainder path.
constexpr std::size_t kBlock = 48;

// data[node][i] = 131*node + 17*i + 7 (mod 256); parity nodes start zeroed.
void fill_pattern(StripeBuffers& buf, int data_nodes) {
  for (int n = 0; n < data_nodes; ++n) {
    auto s = buf.node(n);
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] = static_cast<std::uint8_t>(131 * n + 17 * static_cast<int>(i) + 7);
    }
  }
}

std::string hex(std::span<const std::uint8_t> bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  char b[3];
  for (const std::uint8_t v : bytes) {
    std::snprintf(b, sizeof(b), "%02x", v);
    out += b;
  }
  return out;
}

struct Golden {
  std::string name;
  std::shared_ptr<const codes::LinearCode> code;
  std::vector<std::uint32_t> parity_crcs;  // one per parity node
  std::string parity0_prefix_hex;          // first 16 bytes of parity node k
};

// Encode and compare against the pinned outputs under the active backend.
void check_golden(const Golden& g) {
  const auto& code = *g.code;
  const std::size_t node_bytes =
      kBlock * static_cast<std::size_t>(code.rows());
  StripeBuffers buf(code.total_nodes(), node_bytes);
  fill_pattern(buf, code.data_nodes());
  auto spans = buf.spans();
  code.encode_blocks(spans, kBlock);

  ASSERT_EQ(g.parity_crcs.size(),
            static_cast<std::size_t>(code.parity_nodes()));
  for (int p = 0; p < code.parity_nodes(); ++p) {
    const auto node = buf.node(code.data_nodes() + p);
    EXPECT_EQ(g.parity_crcs[static_cast<std::size_t>(p)], crc32(node))
        << g.name << " parity node " << p << " diverged; full bytes: "
        << hex(node);
  }
  EXPECT_EQ(g.parity0_prefix_hex,
            hex(buf.node(code.data_nodes()).subspan(0, 16)))
      << g.name << " parity node 0 prefix diverged";
}

class GoldenVectorTest : public ::testing::TestWithParam<kernels::Backend> {};

TEST_P(GoldenVectorTest, Rs53) {
  kernels::BackendGuard guard(GetParam());
  check_golden({"RS(5,3)", codes::make_rs(5, 3),
                {0xd4165fedu, 0xd085e7c2u, 0x54cd096du},
                "fe2fe0d9d2f3b4c7660708515a6bbcb5"});
}

TEST_P(GoldenVectorTest, Crs42) {
  kernels::BackendGuard guard(GetParam());
  check_golden({"CRS(4,2)", codes::make_cauchy_rs(4, 2),
                {0xba320144u, 0x338ac140u},
                "ba16f66a2a2eee2a2a56f6dabade7e5a"});
}

TEST_P(GoldenVectorTest, Lrc422) {
  kernels::BackendGuard guard(GetParam());
  check_golden({"LRC(4,2,2)", codes::make_lrc(4, 2, 2),
                {0x41f94944u, 0xd217dae7u, 0x4805e277u, 0x5b701bceu},
                "8d83858785839d7f9d83858785838d8f"});
}

TEST_P(GoldenVectorTest, Star5) {
  kernels::BackendGuard guard(GetParam());
  check_golden({"STAR(5)", codes::make_star(5),
                {0xc80fee14u, 0xfb180934u, 0x8bbebe50u},
                "03182d42576c61768ba0b5cadff4091e"});
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, GoldenVectorTest,
    ::testing::ValuesIn(kernels::available_backends()),
    [](const ::testing::TestParamInfo<kernels::Backend>& info) {
      return std::string(kernels::backend_name(info.param));
    });

}  // namespace
}  // namespace approx
