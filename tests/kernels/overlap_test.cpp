// Aliasing-contract tests for the GF region ops: dst == src (the in-place
// normalization the repair solver performs) must behave exactly like the
// out-of-place call on every backend, for lengths covering vector main
// loops and scalar tails.  Partial overlap is documented as undefined and
// is deliberately not exercised.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/prng.h"
#include "gf/gf256.h"
#include "kernels/dispatch.h"
#include "xorblk/xor_kernels.h"

namespace approx {
namespace {

constexpr std::uint64_t kSeed = 0xA11A5ull;
const std::size_t kLens[] = {0, 1, 5, 16, 31, 32, 33, 64, 100, 256, 1000};
const std::uint8_t kCoeffs[] = {0, 1, 2, 3, 0x53, 0x80, 0xff};

class OverlapTest : public ::testing::TestWithParam<kernels::Backend> {};

TEST_P(OverlapTest, MulRegionInPlaceEqualsOutOfPlace) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed);
  for (const std::size_t n : kLens) {
    for (const std::uint8_t c : kCoeffs) {
      SCOPED_TRACE("n=" + std::to_string(n) + " c=" + std::to_string(c) +
                   " seed=" + std::to_string(kSeed));
      AlignedBuffer inplace(n + 64), out(n + 64), src(n + 64);
      fill_random(src.data(), n, rng);
      std::memcpy(inplace.data(), src.data(), n);

      gf::mul_region(out.data(), src.data(), n, c);
      gf::mul_region(inplace.data(), inplace.data(), n, c);  // dst == src

      EXPECT_EQ(0, std::memcmp(inplace.data(), out.data(), n));
    }
  }
}

TEST_P(OverlapTest, MulAccRegionInPlaceMatchesElementwiseModel) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 1);
  for (const std::size_t n : kLens) {
    for (const std::uint8_t c : kCoeffs) {
      SCOPED_TRACE("n=" + std::to_string(n) + " c=" + std::to_string(c) +
                   " seed=" + std::to_string(kSeed + 1));
      AlignedBuffer buf(n + 64);
      fill_random(buf.data(), n, rng);
      // dst == src: every byte becomes x ^ c*x, independently.
      std::vector<std::uint8_t> expected(n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = static_cast<std::uint8_t>(buf[i] ^ gf::mul(c, buf[i]));
      }

      gf::mul_acc_region(buf.data(), buf.data(), n, c);

      EXPECT_EQ(0, std::memcmp(buf.data(), expected.data(), n));
    }
  }
}

TEST_P(OverlapTest, XorAccInPlaceZeroes) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 2);
  for (const std::size_t n : kLens) {
    SCOPED_TRACE("n=" + std::to_string(n) + " seed=" + std::to_string(kSeed + 2));
    AlignedBuffer buf(n + 64);
    fill_random(buf.data(), n, rng);

    xorblk::xor_acc(buf.data(), buf.data(), n);  // x ^ x == 0

    EXPECT_TRUE(xorblk::is_zero(buf.data(), n));
  }
}

// dst appearing as the *sole* source must be exact: every backend's gather
// accumulates all sources for a chunk before storing it, so the read of
// sources[0] happens before the aliased dst chunk is overwritten.
TEST_P(OverlapTest, XorGatherDstAsOnlySourceIsIdentity) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 3);
  for (const std::size_t n : kLens) {
    SCOPED_TRACE("n=" + std::to_string(n) + " seed=" + std::to_string(kSeed + 3));
    AlignedBuffer buf(n + 64);
    fill_random(buf.data(), n, rng);
    std::vector<std::uint8_t> before(buf.data(), buf.data() + n + 1);

    const std::uint8_t* srcs[] = {buf.data()};
    xorblk::xor_gather(buf.data(), srcs, n);

    EXPECT_EQ(0, std::memcmp(buf.data(), before.data(), n));
  }
}

// The full gather aliasing contract: dst identical to *any one* source —
// first, middle, or last — must match the fully disjoint gather on every
// backend, since no dst chunk is stored until every source's chunk was read.
TEST_P(OverlapTest, XorGatherDstAliasingEachSourceMatchesOutOfPlace) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 4);
  constexpr std::size_t kCount = 3;
  for (const std::size_t n : kLens) {
    for (std::size_t alias = 0; alias < kCount; ++alias) {
      SCOPED_TRACE("n=" + std::to_string(n) +
                   " alias=" + std::to_string(alias) +
                   " seed=" + std::to_string(kSeed + 4));
      AlignedBuffer a(n + 64), b(n + 64), c(n + 64), out(n + 64);
      fill_random(a.data(), n, rng);
      fill_random(b.data(), n, rng);
      fill_random(c.data(), n, rng);
      AlignedBuffer* bufs[kCount] = {&a, &b, &c};
      const std::uint8_t* srcs[kCount] = {a.data(), b.data(), c.data()};

      xorblk::xor_gather(out.data(), srcs, n);           // disjoint reference
      xorblk::xor_gather(bufs[alias]->data(), srcs, n);  // dst == sources[alias]

      EXPECT_EQ(0, std::memcmp(bufs[alias]->data(), out.data(), n));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, OverlapTest,
    ::testing::ValuesIn(kernels::available_backends()),
    [](const ::testing::TestParamInfo<kernels::Backend>& info) {
      return std::string(kernels::backend_name(info.param));
    });

}  // namespace
}  // namespace approx
