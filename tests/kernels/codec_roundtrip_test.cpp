// Property-based round-trip suite over the kernel matrix: for every code
// family at small (k, r), enumerate *all* erasure patterns up to the code's
// fault tolerance and assert decode == original under every kernel backend
// the host exposes, crossed with both schedule-execution modes (naive
// per-target loops vs the compiled XOR program, see codes/schedule_opt.h).
// Block lengths are deliberately not multiples of the vector width so SIMD
// main loops and scalar tails are both on the repaired path.  Data is
// seeded; the seed is part of every failure message.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "codes/array_codes.h"
#include "codes/crs_code.h"
#include "codes/lrc_code.h"
#include "codes/mixed_code.h"
#include "codes/rs_code.h"
#include "common/buffer.h"
#include "common/prng.h"
#include "kernels/dispatch.h"

namespace approx {
namespace {

constexpr std::uint64_t kSeed = 0x5EED12345ull;
// Odd on purpose: exercises the 64/32/16-byte main loops *and* tails.
constexpr std::size_t kBlock = 200;

// Enumerate all subsets of {0..n-1} with size in [1, max_size].
void for_each_erasure(int n, int max_size,
                      const std::function<void(const std::vector<int>&)>& fn) {
  std::vector<int> pattern;
  std::function<void(int)> rec = [&](int start) {
    if (!pattern.empty()) fn(pattern);
    if (static_cast<int>(pattern.size()) == max_size) return;
    for (int i = start; i < n; ++i) {
      pattern.push_back(i);
      rec(i + 1);
      pattern.pop_back();
    }
  };
  rec(0);
  fn({});  // also assert the trivial pattern is handled
}

std::string pattern_label(const std::vector<int>& erased) {
  std::string s = "{";
  for (const int e : erased) s += std::to_string(e) + ",";
  s += "}";
  return s;
}

// Encode once with pristine data, then for every erasure pattern wipe the
// lost nodes and repair; every byte of every node must come back.
template <typename Code>
void roundtrip_all_patterns(const Code& code, const std::string& name) {
  const std::size_t node_bytes =
      kBlock * static_cast<std::size_t>(code.rows());
  StripeBuffers buf(code.total_nodes(), node_bytes);
  Rng rng(kSeed);
  for (int n = 0; n < code.total_nodes(); ++n) {
    auto s = buf.node(n);
    fill_random(s.data(), s.size(), rng);
  }
  {
    auto spans = buf.spans();
    code.encode_blocks(spans, kBlock);
  }
  const StripeBuffers pristine = buf;  // deep copy of the encoded stripe

  for_each_erasure(
      code.total_nodes(), code.fault_tolerance(),
      [&](const std::vector<int>& erased) {
        SCOPED_TRACE(name + " erased=" + pattern_label(erased) +
                     " seed=" + std::to_string(kSeed) + " backend=" +
                     std::string(kernels::backend_name(kernels::active_backend())));
        for (const int e : erased) {
          auto s = buf.node(e);
          std::memset(s.data(), 0xEE, s.size());
        }
        auto spans = buf.spans();
        ASSERT_TRUE(code.repair_blocks(spans, kBlock, erased));
        for (int n = 0; n < code.total_nodes(); ++n) {
          ASSERT_EQ(0, std::memcmp(buf.node(n).data(), pristine.node(n).data(),
                                   node_bytes))
              << "node " << n << " differs after repair";
        }
      });
}

// Param: (kernel backend, schedule-compiler enabled).  Codes without the
// schedule hook (MixedCode) simply run their only path in both modes.
using RoundtripParam = std::tuple<kernels::Backend, bool>;

class CodecRoundtripTest : public ::testing::TestWithParam<RoundtripParam> {
 protected:
  void SetUp() override { kernels::set_backend(std::get<0>(GetParam())); }
  void TearDown() override { kernels::set_backend(prev_); }

  template <typename Code>
  void run(const Code& code, const std::string& name) {
    if constexpr (requires { code.set_schedule_opt_enabled(true); }) {
      code.set_schedule_opt_enabled(std::get<1>(GetParam()));
    }
    roundtrip_all_patterns(code, name);
  }

  kernels::Backend prev_ = kernels::active_backend();
};

TEST_P(CodecRoundtripTest, Rs) { run(*codes::make_rs(5, 3), "RS(5,3)"); }

TEST_P(CodecRoundtripTest, Crs) {
  run(*codes::make_cauchy_rs(4, 2), "CRS(4,2)");
}

TEST_P(CodecRoundtripTest, Lrc) { run(*codes::make_lrc(4, 2, 2), "LRC(4,2,2)"); }

TEST_P(CodecRoundtripTest, Star) { run(*codes::make_star(5), "STAR(5)"); }

TEST_P(CodecRoundtripTest, Evenodd) {
  run(*codes::make_evenodd(5), "EVENODD(5)");
}

TEST_P(CodecRoundtripTest, MixedXcode) {
  run(*codes::make_xcode(5), "X-code(5)");
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, CodecRoundtripTest,
    ::testing::Combine(::testing::ValuesIn(kernels::available_backends()),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<RoundtripParam>& info) {
      return std::string(kernels::backend_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_compiled" : "_naive");
    });

}  // namespace
}  // namespace approx
