// Differential validation of the kernel engine: every backend the host
// exposes must agree byte-for-byte with an independent scalar model (built
// directly on gf::mul, not on the kernels' own scalar backend) across
// randomized lengths, alignment offsets, coefficients and source counts —
// including n == 0, n smaller than a vector register, and tail remainders.
// Each case also plants sentinel guard bytes after dst and asserts the
// kernels never write past n.
//
// A fast-but-wrong kernel is worse than a slow one; this suite is the
// reason the SIMD backends are allowed to exist.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <iterator>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/error.h"
#include "common/prng.h"
#include "gf/gf256.h"
#include "kernels/dispatch.h"
#include "xorblk/xor_kernels.h"

namespace approx {
namespace {

constexpr std::uint64_t kSeed = 0xC0DEC0DE5EEDull;
constexpr std::size_t kMaxLen = 600;    // covers several vector widths + tails
constexpr std::size_t kMaxAlign = 63;   // offset off a 64-byte boundary
constexpr std::uint8_t kGuard = 0xA5;
constexpr std::size_t kGuardBytes = 64;

// Lengths every sweep must hit in addition to random ones: empty, sub-word,
// sub-vector (SSE and AVX), exact vector multiples and off-by-one tails.
const std::size_t kEdgeLens[] = {0,  1,  7,  8,   15,  16,  17,  31, 32,
                                 33, 63, 64, 65,  127, 128, 129, 256};

struct Arena {
  explicit Arena(std::size_t bufs)
      : mem(bufs * (kMaxLen + kMaxAlign + kGuardBytes)) {}
  std::uint8_t* at(std::size_t buf, std::size_t align_off) {
    return mem.data() + buf * (kMaxLen + kMaxAlign + kGuardBytes) + align_off;
  }
  AlignedBuffer mem;
};

class KernelDiffTest : public ::testing::TestWithParam<kernels::Backend> {};

std::string case_label(std::size_t n, std::size_t d_off, std::size_t s_off,
                       unsigned c, std::uint64_t seed) {
  return "seed=" + std::to_string(seed) + " n=" + std::to_string(n) +
         " dst_off=" + std::to_string(d_off) + " src_off=" + std::to_string(s_off) +
         " c=" + std::to_string(c);
}

// One randomized (length, alignment, coefficient) draw; edge lengths are
// interleaved so they are exercised at many alignments.
struct Draw {
  std::size_t n, d_off, s_off;
  std::uint8_t c;
};

Draw draw_case(Rng& rng, std::size_t i) {
  Draw d;
  d.n = (i % 3 == 0) ? kEdgeLens[i / 3 % std::size(kEdgeLens)]
                     : static_cast<std::size_t>(rng.below(kMaxLen + 1));
  d.d_off = static_cast<std::size_t>(rng.below(kMaxAlign + 1));
  d.s_off = static_cast<std::size_t>(rng.below(kMaxAlign + 1));
  // Bias toward interesting coefficients but cover the whole field.
  const std::uint8_t picks[] = {0, 1, 2, 0x80, 0xff, rng.byte(), rng.byte()};
  d.c = picks[rng.below(std::size(picks))];
  return d;
}

TEST_P(KernelDiffTest, MulRegionMatchesScalarModel) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed);
  Arena arena(2);
  std::vector<std::uint8_t> expected(kMaxLen);
  for (std::size_t i = 0; i < 2500; ++i) {
    const Draw d = draw_case(rng, i);
    SCOPED_TRACE(case_label(d.n, d.d_off, d.s_off, d.c, kSeed));
    std::uint8_t* dst = arena.at(0, d.d_off);
    std::uint8_t* src = arena.at(1, d.s_off);
    fill_random(src, d.n, rng);
    std::memset(dst, kGuard, d.n + kGuardBytes);
    for (std::size_t b = 0; b < d.n; ++b) expected[b] = gf::mul(d.c, src[b]);

    gf::mul_region(dst, src, d.n, d.c);

    ASSERT_EQ(0, std::memcmp(dst, expected.data(), d.n));
    for (std::size_t g = 0; g < kGuardBytes; ++g) {
      ASSERT_EQ(kGuard, dst[d.n + g]) << "guard byte " << g << " clobbered";
    }
  }
}

TEST_P(KernelDiffTest, MulAccRegionMatchesScalarModel) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 1);
  Arena arena(2);
  std::vector<std::uint8_t> expected(kMaxLen);
  for (std::size_t i = 0; i < 2500; ++i) {
    const Draw d = draw_case(rng, i);
    SCOPED_TRACE(case_label(d.n, d.d_off, d.s_off, d.c, kSeed + 1));
    std::uint8_t* dst = arena.at(0, d.d_off);
    std::uint8_t* src = arena.at(1, d.s_off);
    fill_random(src, d.n, rng);
    fill_random(dst, d.n, rng);
    std::memset(dst + d.n, kGuard, kGuardBytes);
    for (std::size_t b = 0; b < d.n; ++b) {
      expected[b] = static_cast<std::uint8_t>(dst[b] ^ gf::mul(d.c, src[b]));
    }

    gf::mul_acc_region(dst, src, d.n, d.c);

    ASSERT_EQ(0, std::memcmp(dst, expected.data(), d.n));
    for (std::size_t g = 0; g < kGuardBytes; ++g) {
      ASSERT_EQ(kGuard, dst[d.n + g]) << "guard byte " << g << " clobbered";
    }
  }
}

TEST_P(KernelDiffTest, XorAccMatchesScalarModel) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 2);
  Arena arena(2);
  std::vector<std::uint8_t> expected(kMaxLen);
  for (std::size_t i = 0; i < 2000; ++i) {
    const Draw d = draw_case(rng, i);
    SCOPED_TRACE(case_label(d.n, d.d_off, d.s_off, d.c, kSeed + 2));
    std::uint8_t* dst = arena.at(0, d.d_off);
    std::uint8_t* src = arena.at(1, d.s_off);
    fill_random(src, d.n, rng);
    fill_random(dst, d.n, rng);
    std::memset(dst + d.n, kGuard, kGuardBytes);
    for (std::size_t b = 0; b < d.n; ++b) {
      expected[b] = static_cast<std::uint8_t>(dst[b] ^ src[b]);
    }

    xorblk::xor_acc(dst, src, d.n);

    ASSERT_EQ(0, std::memcmp(dst, expected.data(), d.n));
    for (std::size_t g = 0; g < kGuardBytes; ++g) {
      ASSERT_EQ(kGuard, dst[d.n + g]) << "guard byte " << g << " clobbered";
    }
  }
}

TEST_P(KernelDiffTest, XorAcc2MatchesScalarModel) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 3);
  Arena arena(3);
  std::vector<std::uint8_t> expected(kMaxLen);
  for (std::size_t i = 0; i < 1500; ++i) {
    const Draw d = draw_case(rng, i);
    SCOPED_TRACE(case_label(d.n, d.d_off, d.s_off, d.c, kSeed + 3));
    std::uint8_t* dst = arena.at(0, d.d_off);
    std::uint8_t* a = arena.at(1, d.s_off);
    std::uint8_t* b = arena.at(2, static_cast<std::size_t>(rng.below(kMaxAlign + 1)));
    fill_random(a, d.n, rng);
    fill_random(b, d.n, rng);
    fill_random(dst, d.n, rng);
    std::memset(dst + d.n, kGuard, kGuardBytes);
    for (std::size_t i2 = 0; i2 < d.n; ++i2) {
      expected[i2] = static_cast<std::uint8_t>(dst[i2] ^ a[i2] ^ b[i2]);
    }

    xorblk::xor_acc2(dst, a, b, d.n);

    ASSERT_EQ(0, std::memcmp(dst, expected.data(), d.n));
    for (std::size_t g = 0; g < kGuardBytes; ++g) {
      ASSERT_EQ(kGuard, dst[d.n + g]) << "guard byte " << g << " clobbered";
    }
  }
}

TEST_P(KernelDiffTest, XorGatherMatchesScalarModel) {
  kernels::BackendGuard guard(GetParam());
  Rng rng(kSeed + 4);
  constexpr std::size_t kMaxSources = 9;
  Arena arena(1 + kMaxSources);
  std::vector<std::uint8_t> expected(kMaxLen);
  for (std::size_t i = 0; i < 1500; ++i) {
    const Draw d = draw_case(rng, i);
    const std::size_t count = rng.below(kMaxSources + 1);  // includes 0
    SCOPED_TRACE(case_label(d.n, d.d_off, d.s_off, d.c, kSeed + 4) +
                 " sources=" + std::to_string(count));
    std::uint8_t* dst = arena.at(0, d.d_off);
    std::vector<const std::uint8_t*> srcs;
    std::fill(expected.begin(), expected.begin() + static_cast<std::ptrdiff_t>(d.n), 0);
    for (std::size_t s = 0; s < count; ++s) {
      std::uint8_t* p =
          arena.at(1 + s, static_cast<std::size_t>(rng.below(kMaxAlign + 1)));
      fill_random(p, d.n, rng);
      for (std::size_t b = 0; b < d.n; ++b) expected[b] ^= p[b];
      srcs.push_back(p);
    }
    std::memset(dst, kGuard, d.n + kGuardBytes);

    xorblk::xor_gather(dst, srcs, d.n);

    ASSERT_EQ(0, std::memcmp(dst, expected.data(), d.n));
    for (std::size_t g = 0; g < kGuardBytes; ++g) {
      ASSERT_EQ(kGuard, dst[d.n + g]) << "guard byte " << g << " clobbered";
    }
  }
}

// The per-backend byte counters must attribute traffic to the backend that
// actually served it.
TEST_P(KernelDiffTest, BytesProcessedCounterAdvances) {
  kernels::BackendGuard guard(GetParam());
  const std::uint64_t before = kernels::bytes_processed(GetParam());
  AlignedBuffer dst(4096), src(4096);
  gf::mul_acc_region(dst.data(), src.data(), 4096, 2);
#ifndef APPROX_OBS_OFF
  EXPECT_GE(kernels::bytes_processed(GetParam()), before + 4096);
#else
  (void)before;
#endif
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, KernelDiffTest,
    ::testing::ValuesIn(kernels::available_backends()),
    [](const ::testing::TestParamInfo<kernels::Backend>& info) {
      return std::string(kernels::backend_name(info.param));
    });

TEST(KernelDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(kernels::backend_available(kernels::Backend::kScalar));
  const auto backends = kernels::available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(kernels::Backend::kScalar, backends.front());
}

TEST(KernelDispatchTest, SetBackendRejectsUnavailable) {
  for (const kernels::Backend b :
       {kernels::Backend::kSsse3, kernels::Backend::kAvx2,
        kernels::Backend::kAvx512, kernels::Backend::kGfni}) {
    if (!kernels::backend_available(b)) {
      EXPECT_THROW(kernels::set_backend(b), InvalidArgument);
    }
  }
}

TEST(KernelDispatchTest, BackendGuardRestores) {
  const kernels::Backend before = kernels::active_backend();
  {
    kernels::BackendGuard guard(kernels::Backend::kScalar);
    EXPECT_EQ(kernels::Backend::kScalar, kernels::active_backend());
  }
  EXPECT_EQ(before, kernels::active_backend());
}

}  // namespace
}  // namespace approx
