// Validates the paper's reliability equations (1)-(4) against the exact
// numbers quoted in §3.4 and against brute-force decodability of the real
// codec.
#include <gtest/gtest.h>

#include "analysis/reliability.h"

namespace approx::analysis {
namespace {

using codes::Family;
using core::ApprParams;
using core::Structure;

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1ull);
  EXPECT_EQ(binomial(5, 0), 1ull);
  EXPECT_EQ(binomial(5, 5), 1ull);
  EXPECT_EQ(binomial(5, 2), 10ull);
  EXPECT_EQ(binomial(14, 2), 91ull);
  EXPECT_EQ(binomial(14, 4), 1001ull);
  EXPECT_EQ(binomial(52, 5), 2598960ull);
  EXPECT_EQ(binomial(7, 9), 0ull);
}

// §3.4: "for APPR.RS(3,1,2,3,Even), 80.21% double failures cases are
// recoverable for unimportant data, and 95.50% quad failures is
// recoverable for important data nodes. For APPR.RS(3,1,2,3,Uneven),
// P_U = 86.81%, P_I = 98.50%."
TEST(PaperEquations, QuotedNumbersEven) {
  const ApprParams p{Family::RS, 3, 1, 2, 3, Structure::Even};
  EXPECT_NEAR(paper_p_u(p), 0.8021978, 1e-6);
  EXPECT_NEAR(paper_p_i(p), 0.9550450, 1e-6);
}

TEST(PaperEquations, QuotedNumbersUneven) {
  const ApprParams p{Family::RS, 3, 1, 2, 3, Structure::Uneven};
  EXPECT_NEAR(paper_p_u(p), 0.8681319, 1e-6);
  EXPECT_NEAR(paper_p_i(p), 0.9850150, 1e-6);
}

// The closed forms count only single-stripe concentrated losses; the exact
// enumeration can only be at least as pessimistic for P_U (every pattern
// the formula counts as fatal really is) and must agree on which side the
// approximation errs.
TEST(ExhaustiveVsFormula, UnimportantDoubleFailure) {
  for (const auto structure : {Structure::Even, Structure::Uneven}) {
    const ApprParams p{Family::RS, 3, 1, 2, 3, structure};
    const auto exact = exhaustive_reliability(p, p.r + 1);
    // The formula is exact for P_U in this geometry: a double failure loses
    // unimportant data iff both nodes land in the same stripe.
    EXPECT_NEAR(exact.p_unimportant, paper_p_u(p), 1e-9)
        << structure_name(structure);
  }
}

TEST(ExhaustiveVsFormula, ImportantQuadFailure) {
  for (const auto structure : {Structure::Even, Structure::Uneven}) {
    const ApprParams p{Family::RS, 3, 1, 2, 3, structure};
    const auto exact = exhaustive_reliability(p, 4);
    // Formula counts the dominant loss mode; the codec may additionally
    // lose important data in mixed patterns (e.g. 3 stripe nodes + 1
    // global), so the exact value is bounded above by the formula.
    EXPECT_LE(exact.p_important, paper_p_i(p) + 1e-9) << structure_name(structure);
    EXPECT_GT(exact.p_important, 0.85) << structure_name(structure);
  }
}

// Up to the guaranteed tolerance nothing is ever lost.
TEST(Exhaustive, WithinToleranceNothingLost) {
  const ApprParams p{Family::RS, 3, 1, 2, 3, Structure::Even};
  const auto r1 = exhaustive_reliability(p, 1);
  EXPECT_DOUBLE_EQ(r1.p_unimportant, 1.0);
  EXPECT_DOUBLE_EQ(r1.p_important, 1.0);
  const auto r3 = exhaustive_reliability(p, 3);
  EXPECT_DOUBLE_EQ(r3.p_important, 1.0);
}

TEST(MonteCarlo, ConvergesToExhaustive) {
  const ApprParams p{Family::RS, 3, 1, 2, 3, Structure::Even};
  const auto exact = exhaustive_reliability(p, 2);
  const auto mc = monte_carlo_reliability(p, 2, 20000, 42);
  EXPECT_NEAR(mc.p_unimportant, exact.p_unimportant, 0.02);
  EXPECT_NEAR(mc.p_important, exact.p_important, 0.02);
}

TEST(MonteCarlo, Deterministic) {
  const ApprParams p{Family::STAR, 5, 1, 2, 4, Structure::Even};
  const auto a = monte_carlo_reliability(p, 2, 2000, 7);
  const auto b = monte_carlo_reliability(p, 2, 2000, 7);
  EXPECT_DOUBLE_EQ(a.p_unimportant, b.p_unimportant);
  EXPECT_DOUBLE_EQ(a.p_important, b.p_important);
}

// Uneven beats Even on both P_U and P_I (the paper's argument for Uneven
// providing better reliability), across several geometries.
TEST(StructureComparison, UnevenIsMoreReliable) {
  for (int k : {3, 4, 6}) {
    for (int h : {3, 4, 6}) {
      ApprParams even{Family::RS, k, 1, 2, h, Structure::Even};
      ApprParams uneven{Family::RS, k, 1, 2, h, Structure::Uneven};
      EXPECT_GT(paper_p_u(uneven), paper_p_u(even)) << k << " " << h;
      EXPECT_GT(paper_p_i(uneven), paper_p_i(even)) << k << " " << h;
    }
  }
}

}  // namespace
}  // namespace approx::analysis
