// Durability Monte-Carlo: determinism, limiting behaviour, and the
// qualitative orderings the storage model implies.
#include <gtest/gtest.h>

#include "analysis/durability.h"
#include "codes/rs_code.h"

namespace approx::analysis {
namespace {

using codes::Family;
using core::ApprParams;
using core::Structure;

DurabilityParams fast_params() {
  DurabilityParams p;
  p.trials = 300;
  p.mission_hours = 2.0 * 8760;
  return p;
}

TEST(Durability, Deterministic) {
  const ApprParams appr{Family::RS, 4, 1, 2, 4, Structure::Even};
  const auto a = simulate_appr_durability(appr, fast_params());
  const auto b = simulate_appr_durability(appr, fast_params());
  EXPECT_DOUBLE_EQ(a.p_important_loss, b.p_important_loss);
  EXPECT_DOUBLE_EQ(a.p_unimportant_loss, b.p_unimportant_loss);
}

TEST(Durability, ImportantTierBeatsUnimportantTier) {
  const ApprParams appr{Family::RS, 4, 1, 2, 4, Structure::Even};
  DurabilityParams p = fast_params();
  p.node_mttf_hours = 0.5 * 8760;  // stress failure rate to get signal
  const auto r = simulate_appr_durability(appr, p);
  EXPECT_GT(r.p_unimportant_loss, 0.0);
  EXPECT_LT(r.p_important_loss, r.p_unimportant_loss);
}

TEST(Durability, FasterRepairImprovesDurability) {
  auto rs = codes::make_rs(5, 3);
  DurabilityParams slow = fast_params();
  slow.node_mttf_hours = 0.25 * 8760;
  slow.mttr_hours = 24 * 14;  // two-week rebuild
  DurabilityParams fast = slow;
  fast.mttr_hours = 12;
  const auto r_slow = simulate_base_durability(*rs, slow);
  const auto r_fast = simulate_base_durability(*rs, fast);
  EXPECT_GT(r_slow.p_important_loss, r_fast.p_important_loss);
}

TEST(Durability, HigherFailureRateLosesMore) {
  auto rs = codes::make_rs(5, 3);
  DurabilityParams gentle = fast_params();
  gentle.mttr_hours = 24 * 7;
  DurabilityParams harsh = gentle;
  gentle.node_mttf_hours = 2.0 * 8760;
  harsh.node_mttf_hours = 0.1 * 8760;
  const auto r_gentle = simulate_base_durability(*rs, gentle);
  const auto r_harsh = simulate_base_durability(*rs, harsh);
  EXPECT_GE(r_harsh.p_important_loss, r_gentle.p_important_loss);
  EXPECT_GT(r_harsh.p_important_loss, 0.0);
}

TEST(Durability, ReliableRegimeLosesNothing) {
  // Long MTTF + quick repair + short mission: no loss in a 3DFT system.
  auto rs = codes::make_rs(4, 3);
  DurabilityParams p;
  p.trials = 200;
  p.node_mttf_hours = 50.0 * 8760;
  p.mttr_hours = 4;
  p.mission_hours = 8760;
  const auto r = simulate_base_durability(*rs, p);
  EXPECT_DOUBLE_EQ(r.p_important_loss, 0.0);
}

TEST(Durability, UnevenProtectsImportantAtLeastAsWellAsEven) {
  DurabilityParams p = fast_params();
  p.node_mttf_hours = 0.3 * 8760;
  p.trials = 500;
  const ApprParams even{Family::RS, 4, 1, 2, 4, Structure::Even};
  const ApprParams uneven{Family::RS, 4, 1, 2, 4, Structure::Uneven};
  const auto r_even = simulate_appr_durability(even, p);
  const auto r_uneven = simulate_appr_durability(uneven, p);
  // P_I(Uneven) > P_I(Even) per incident; over a mission this shows up as
  // fewer important-loss trials (allow a small sampling slack).
  EXPECT_LE(r_uneven.p_important_loss, r_even.p_important_loss + 0.03);
}

TEST(Durability, InvalidParametersThrow) {
  auto rs = codes::make_rs(4, 2);
  DurabilityParams p;
  p.trials = 0;
  EXPECT_THROW(simulate_base_durability(*rs, p), InvalidArgument);
  p.trials = 1;
  p.mttr_hours = -1;
  EXPECT_THROW(simulate_base_durability(*rs, p), InvalidArgument);
}

}  // namespace
}  // namespace approx::analysis
