// Crash-consistency torture harness.
//
// FaultInjectingBackend's crash-stop mode simulates a power cut after the
// N-th mutating I/O operation (truncating open, pwrite, fsync, rename,
// remove, directory fsync): once the crash fires, every further mutation
// fails and touches nothing, freezing the on-disk state exactly as a
// pulled plug would.  kTornWrite additionally lets the crashing pwrite
// persist the first half of its bytes - the torn sector of a real outage.
//
// The harness first runs each workload once against an unarmed backend to
// count its mutations, then replays it once per crash point in
// [0, mutations) and per crash mode, "reboots" by reopening the directory
// through a fresh backend, and asserts the crash invariants:
//
//   1. The manifest either parses (the volume committed) or is absent
//      (the volume never claimed to exist) - manifest.txt is the atomic
//      commit point, so no crash may leave a half-committed volume.
//   2. A committed volume always opens, and reopening sweeps any tmp /
//      quarantine debris the crashed writer left behind.
//   3. A committed volume decodes byte-identically, or reports its loss
//      explicitly (crc_ok false + unrecoverable_bytes) - never silent
//      corruption.
//   4. After the reboot a full scrub + repair returns the volume to a
//      clean, exactly-decodable state whenever the damage is within the
//      code's tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

using CrashMode = FaultInjectingBackend::CrashMode;

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::vector<std::uint8_t> read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// Retry policy that never really sleeps; one attempt keeps the mutation
// count of a workload independent of how often a dead backend is re-asked.
RetryPolicy no_retry() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.sleeper = [](std::chrono::microseconds) {};
  return p;
}

const char* mode_name(CrashMode mode) {
  return mode == CrashMode::kFailStop ? "fail-stop" : "torn-write";
}

// Parameterized over the store pipeline depth: the on-disk mutation
// sequence is the ordered write stage at every depth, so every crash
// invariant must hold whether stripes are streamed serially (depth 1, the
// pre-pipeline behavior) or many-at-a-time (depths 2 and 8).
class CrashHarnessTest : public ::testing::TestWithParam<int> {
 protected:
  StoreOptions crash_opts() {
    StoreOptions opts;
    opts.io_payload = 1024;
    opts.retry = no_retry();
    opts.pipeline_depth = GetParam();
    return opts;
  }

  void SetUp() override {
    // Parameterized test names contain '/'; flatten for the path.
    std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::replace(name.begin(), name.end(), '/', '_');
    dir_ = fs::path(::testing::TempDir()) / ("approxcrash_" + name);
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data_ = random_bytes(30000, 11);
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Post-reboot invariant check, shared by every crash point.  Returns
  // true when the volume was committed (a manifest parses).
  bool check_invariants(const fs::path& vol_dir, bool expect_exact) {
    PosixIoBackend io;
    if (!io.exists(vol_dir / kManifestFile)) {
      // Never committed: the volume does not claim to exist.  That is the
      // explicit fallback, not a failure.
      return false;
    }
    // Invariant: a present manifest parses and the volume opens (reopening
    // is the reboot moment - it also sweeps crash debris).
    VolumeStore vol(io, vol_dir, crash_opts());
    for (int n = 0; n < vol.code().total_nodes(); ++n) {
      EXPECT_FALSE(io.exists(fs::path(vol.node_path(n).string() + kTmpSuffix)))
          << "tmp debris survived reboot for node " << n;
    }

    // Invariant: the stored data comes back byte-identical, or the loss is
    // explicit.  Never silent corruption.
    const fs::path out = vol_dir / "reboot_out.bin";
    const auto result = vol.decode_file(out);
    if (result.crc_ok) {
      EXPECT_EQ(read_whole_file(out), data_);
    } else {
      EXPECT_GT(result.unrecoverable_bytes, 0u)
          << "decode reported a bad checksum without accounting for the loss";
    }
    if (expect_exact) {
      EXPECT_TRUE(result.crc_ok);
      EXPECT_EQ(result.unrecoverable_bytes, 0u);
    }

    // Invariant: scrub + repair heal whatever the crash left damaged.
    ScrubService service(vol);
    (void)service.drain_pending();
    (void)service.repair();
    EXPECT_TRUE(service.scrub().clean());
    const auto healed = vol.decode_file(out);
    EXPECT_TRUE(healed.crc_ok);
    EXPECT_EQ(read_whole_file(out), data_);
    fs::remove(out);
    return true;
  }

  fs::path dir_;
  fs::path input_;
  std::vector<std::uint8_t> data_;
};

// Crash at every mutation of a fresh encode (chunk-file put + seal,
// superblock write, manifest commit).  The manifest is written last, so a
// committed volume is always complete and exact.
TEST_P(CrashHarnessTest, EncodeSurvivesEveryCrashPoint) {
  // Counting pass.
  PosixIoBackend posix;
  FaultInjectingBackend counter(posix);
  VolumeStore::encode_file(counter, input_, dir_ / "count", rs_params(), 512,
                           std::nullopt, crash_opts());
  const std::uint64_t total = counter.mutations();
  ASSERT_GT(total, 10u) << "workload too small to be worth torturing";
  {
    PosixIoBackend io;
    VolumeStore vol(io, dir_ / "count", crash_opts());
    ASSERT_TRUE(vol.decode_file(dir_ / "count_out.bin").crc_ok);
  }

  for (const CrashMode mode : {CrashMode::kFailStop, CrashMode::kTornWrite}) {
    for (std::uint64_t n = 0; n < total; ++n) {
      const fs::path vol_dir =
          dir_ / ("vol_" + std::string(mode_name(mode)) + std::to_string(n));
      PosixIoBackend inner;
      FaultInjectingBackend faulty(inner);
      faulty.set_crash_point(n, mode);
      try {
        VolumeStore::encode_file(faulty, input_, vol_dir, rs_params(), 512,
                                 std::nullopt, crash_opts());
        FAIL() << "crash point " << n << " (" << mode_name(mode)
               << ") did not interrupt the encode";
      } catch (const StoreError&) {
        EXPECT_TRUE(faulty.crashed());
      }
      // Encode commits the manifest last, so a crashed encode leaves
      // either no committed volume (the usual case) or - when only the
      // final directory fsync was lost - a committed volume that is
      // already complete.  Committed-but-inexact must never happen.
      (void)check_invariants(vol_dir, /*expect_exact=*/true);
      fs::remove_all(vol_dir);
    }
  }
}

// Crash at every mutation of the final commit sequence in isolation:
// re-saving a manifest over an existing one (tmp write + fsync + rename +
// dir fsync).  The old or the new manifest must survive - never neither,
// never a torn mix.
TEST_P(CrashHarnessTest, ManifestCommitIsAtomicUnderEveryCrashPoint) {
  PosixIoBackend posix;
  VolumeStore vol = VolumeStore::encode_file(posix, input_, dir_ / "vol",
                                             rs_params(), 512, std::nullopt,
                                             crash_opts());
  Manifest updated = vol.manifest();
  updated.extra["note"] = "updated";

  // Counting pass.
  FaultInjectingBackend counter(posix);
  ASSERT_TRUE(updated.save(counter, dir_ / "vol", no_retry()).ok());
  const std::uint64_t total = counter.mutations();
  ASSERT_GE(total, 3u);

  for (const CrashMode mode : {CrashMode::kFailStop, CrashMode::kTornWrite}) {
    for (std::uint64_t n = 0; n < total; ++n) {
      PosixIoBackend inner;
      FaultInjectingBackend faulty(inner);
      faulty.set_crash_point(n, mode);
      (void)updated.save(faulty, dir_ / "vol", no_retry());

      // Reboot: some manifest must parse - the old one or the new one.
      PosixIoBackend io;
      const Manifest survived = Manifest::load(io, dir_ / "vol");
      const auto note = survived.extra.find("note");
      if (note != survived.extra.end()) {
        EXPECT_EQ(note->second, "updated");
      }
      // Either way the volume opens and decodes exactly.
      VolumeStore reopened(io, dir_ / "vol", crash_opts());
      EXPECT_TRUE(reopened.decode_file(dir_ / "out.bin").crc_ok);
    }
  }
}

// Crash at every mutation of a scrub-service repair of a lost node.  The
// repaired volume's files are replaced atomically (tmp + rename), so at
// every crash point the volume either still serves the degraded-but-exact
// data, or the fully repaired data - and a rerun of repair completes.
TEST_P(CrashHarnessTest, RepairSurvivesEveryCrashPoint) {
  PosixIoBackend posix;
  VolumeStore::encode_file(posix, input_, dir_ / "golden", rs_params(), 512,
                           std::nullopt, crash_opts());

  // Counting pass over the repair workload.
  const auto damage_and_count = [&]() -> std::uint64_t {
    fs::remove_all(dir_ / "count");
    fs::copy(dir_ / "golden", dir_ / "count");
    fs::remove(dir_ / "count" / node_file_name(kVolumeV2, 2));
    PosixIoBackend inner;
    FaultInjectingBackend counting(inner);
    VolumeStore vol(counting, dir_ / "count", crash_opts());
    ScrubService service(vol);
    const RepairOutcome outcome = service.repair();
    EXPECT_TRUE(outcome.fully_recovered);
    return counting.mutations();
  };
  const std::uint64_t baseline = [&] {
    // The open itself performs no mutations on a clean volume; measure
    // from a fresh backend so the count covers exactly open + repair.
    return damage_and_count();
  }();
  ASSERT_GT(baseline, 3u);

  for (const CrashMode mode : {CrashMode::kFailStop, CrashMode::kTornWrite}) {
    for (std::uint64_t n = 0; n < baseline; ++n) {
      const fs::path vol_dir = dir_ / "work";
      fs::remove_all(vol_dir);
      fs::copy(dir_ / "golden", vol_dir);
      fs::remove(vol_dir / node_file_name(kVolumeV2, 2));

      PosixIoBackend inner;
      FaultInjectingBackend faulty(inner);
      faulty.set_crash_point(n, mode);
      bool crashed = false;
      try {
        VolumeStore vol(faulty, vol_dir, crash_opts());
        ScrubService service(vol);
        (void)service.repair();
      } catch (const StoreError&) {
        crashed = true;
      }
      EXPECT_TRUE(crashed || !faulty.crashed() || faulty.mutations() >= n);

      // Reboot.  The volume committed long ago, so it must open, must
      // decode exactly (one lost node is within tolerance even if the
      // repair never finished), and a rerun of repair must heal it.
      ASSERT_TRUE(check_invariants(vol_dir, /*expect_exact=*/true))
          << "crash point " << n << " (" << mode_name(mode)
          << ") lost the committed volume";
      fs::remove_all(vol_dir);
    }
  }
}

// A degraded read that quarantines a corrupt chunk file, crashed before
// its background repair finishes, must reopen with the damage re-queued -
// the quarantine debris is the persistent record of the pending repair.
TEST_P(CrashHarnessTest, QuarantineDebrisReArmsRepairAfterReboot) {
  PosixIoBackend posix;
  VolumeStore vol = VolumeStore::encode_file(posix, input_, dir_ / "vol",
                                             rs_params(), 512, std::nullopt,
                                             crash_opts());
  // Flip payload bytes inside node 1 so a block CRC fails.
  const fs::path victim = vol.node_path(1);
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    const char junk[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    f.write(junk, sizeof junk);
  }
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  ASSERT_EQ(result.quarantined_nodes.size(), 1u);
  EXPECT_FALSE(posix.exists(victim));
  EXPECT_TRUE(posix.exists(fs::path(victim.string() + kQuarantineSuffix)));

  // "Crash" before the background repair ran: just reopen the directory.
  PosixIoBackend io;
  VolumeStore reopened(io, dir_ / "vol", crash_opts());
  EXPECT_EQ(reopened.pending_repairs(), 1u);
  ScrubService service(reopened);
  const RepairOutcome outcome = service.drain_pending();
  EXPECT_TRUE(outcome.attempted);
  EXPECT_TRUE(outcome.fully_recovered);
  EXPECT_TRUE(posix.exists(victim));
  EXPECT_FALSE(posix.exists(fs::path(victim.string() + kQuarantineSuffix)));
  EXPECT_TRUE(service.scrub().clean());
  EXPECT_TRUE(reopened.decode_file(dir_ / "out2.bin").crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "out2.bin"), data_);
}

INSTANTIATE_TEST_SUITE_P(Depths, CrashHarnessTest, ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "depth" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace approx::store
