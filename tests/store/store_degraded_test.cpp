// Self-healing degraded reads: VolumeStore::read / decode_file under
// missing, CRC-corrupt and I/O-failing chunk files, the quarantine ->
// enqueue -> drain_pending repair loop, and explicit-loss reporting beyond
// the code's tolerance.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

using Op = FaultInjectingBackend::Op;
using Fault = FaultInjectingBackend::Fault;

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::vector<std::uint8_t> read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void corrupt_file_at(const fs::path& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(static_cast<std::streamoff>(offset));
  byte = static_cast<char>(byte ^ 0x5a);
  f.write(&byte, 1);
  ASSERT_TRUE(f.good());
}

class DegradedReadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxdeg_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data_ = random_bytes(120000, 77);
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  VolumeStore encode(std::size_t io_payload = 4096) {
    StoreOptions opts;
    opts.io_payload = io_payload;
    return VolumeStore::encode_file(io_, input_, dir_ / "vol", rs_params(),
                                    1024, std::nullopt, opts);
  }

  // Slice of the logical stream (important prefix || unimportant tail) as
  // decode_file lays it out - read() must serve exactly these bytes.
  std::vector<std::uint8_t> expected_range(const VolumeStore& vol,
                                           std::uint64_t off,
                                           std::size_t len) const {
    // The logical stream is the original file: decode_file writes it back
    // byte-identically, so expected bytes are just the input slice.
    (void)vol;
    return {data_.begin() + static_cast<std::ptrdiff_t>(off),
            data_.begin() + static_cast<std::ptrdiff_t>(off + len)};
  }

  PosixIoBackend io_;
  fs::path dir_;
  fs::path input_;
  std::vector<std::uint8_t> data_;
};

TEST_F(DegradedReadTest, HealthyRangedReadsMatchTheFile) {
  VolumeStore vol = encode();
  const std::uint64_t imp = vol.manifest().important_len;
  // Ranges probing the interesting seams: start, inside the important
  // prefix, spanning the important/unimportant boundary, the tail.
  const std::pair<std::uint64_t, std::size_t> ranges[] = {
      {0, 1}, {0, 4096}, {imp - 100, 200}, {imp, 512},
      {data_.size() - 777, 777}, {0, data_.size()}};
  for (const auto& [off, len] : ranges) {
    std::vector<std::uint8_t> out(len);
    const auto result = vol.read(off, out);
    EXPECT_TRUE(result.crc_ok) << "off=" << off << " len=" << len;
    EXPECT_TRUE(result.degraded_nodes.empty());
    EXPECT_EQ(out, expected_range(vol, off, len)) << "off=" << off;
  }
  std::vector<std::uint8_t> past_end(11);
  EXPECT_THROW(vol.read(data_.size() - 10, past_end), Error);
}

TEST_F(DegradedReadTest, RangedReadReconstructsAroundAnySingleLostNode) {
  VolumeStore vol = encode();
  const std::uint64_t imp = vol.manifest().important_len;
  for (int n = 0; n < vol.code().total_nodes(); ++n) {
    SCOPED_TRACE("node " + std::to_string(n));
    VolumeStore fresh(io_, dir_ / "vol");
    const fs::path victim = fresh.node_path(n);
    const fs::path hidden = dir_ / "hidden.bin";
    fs::rename(victim, hidden);

    std::vector<std::uint8_t> out(imp + 1000);
    const auto result = fresh.read(imp - 500, out);
    EXPECT_TRUE(result.crc_ok);
    EXPECT_EQ(result.unrecoverable_bytes, 0u);
    ASSERT_EQ(result.degraded_nodes.size(), 1u);
    EXPECT_EQ(result.degraded_nodes[0], n);
    EXPECT_EQ(out, expected_range(fresh, imp - 500, out.size()));
    EXPECT_EQ(fresh.pending_repairs(), 1u);

    fs::rename(hidden, victim);
  }
}

TEST_F(DegradedReadTest, DegradedReadIsByteIdenticalUnderInjectedIoFailure) {
  VolumeStore golden = encode();
  const std::vector<std::uint8_t> healthy = [&] {
    std::vector<std::uint8_t> out(data_.size());
    EXPECT_TRUE(golden.read(0, out).crc_ok);
    return out;
  }();
  ASSERT_EQ(healthy, data_);

  // A node whose every read keeps failing after retries is an erasure; the
  // read must still be byte-identical to the healthy store's answer.
  FaultInjectingBackend faulty(io_);
  faulty.inject({Op::kRead, "node_002", IoCode::kIoError, -1, 0});
  StoreOptions opts;
  opts.retry.max_attempts = 2;
  opts.retry.sleeper = [](std::chrono::microseconds) {};
  VolumeStore vol(faulty, dir_ / "vol", opts);

  std::vector<std::uint8_t> out(data_.size());
  const auto result = vol.read(0, out);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(out, healthy);
  ASSERT_EQ(result.degraded_nodes.size(), 1u);
  EXPECT_EQ(result.degraded_nodes[0], 2);
  // An I/O-failing node is not quarantined (its file may be fine once the
  // device recovers) but is queued for repair.
  EXPECT_TRUE(result.quarantined_nodes.empty());
  EXPECT_EQ(vol.pending_repairs(), 1u);
}

TEST_F(DegradedReadTest, CorruptChunkIsQuarantinedAndScrubRestoresRedundancy) {
  VolumeStore vol = encode();
  const fs::path victim = vol.node_path(3);
  corrupt_file_at(victim, 4096 / 2);

  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "out.bin"), data_);
  EXPECT_GE(result.corrupt_blocks, 1u);
  ASSERT_EQ(result.quarantined_nodes.size(), 1u);
  EXPECT_EQ(result.quarantined_nodes[0], 3);
  // The rotten file was moved aside, not deleted: evidence survives until
  // repair replaces the node.
  EXPECT_FALSE(fs::exists(victim));
  EXPECT_TRUE(fs::exists(fs::path(victim.string() + kQuarantineSuffix)));

  // Background repair drains the queue and restores full redundancy.
  ScrubService service(vol);
  const RepairOutcome outcome = service.drain_pending();
  EXPECT_TRUE(outcome.attempted);
  EXPECT_TRUE(outcome.fully_recovered);
  EXPECT_TRUE(fs::exists(victim));
  EXPECT_FALSE(fs::exists(fs::path(victim.string() + kQuarantineSuffix)));
  EXPECT_EQ(vol.pending_repairs(), 0u);
  EXPECT_TRUE(service.scrub().clean());
  EXPECT_TRUE(vol.parity_scrub().clean());

  const auto after = vol.decode_file(dir_ / "out2.bin");
  EXPECT_TRUE(after.crc_ok);
  EXPECT_TRUE(after.degraded_nodes.empty());
  EXPECT_EQ(read_whole_file(dir_ / "out2.bin"), data_);
}

TEST_F(DegradedReadTest, QuarantineCanBeDisabledPerRead) {
  VolumeStore vol = encode();
  const fs::path victim = vol.node_path(3);
  corrupt_file_at(victim, 4096 / 2);

  VolumeStore::DecodeOptions opts;
  opts.quarantine = false;
  const auto result = vol.decode_file(dir_ / "out.bin", opts);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_TRUE(result.quarantined_nodes.empty());
  EXPECT_TRUE(fs::exists(victim));  // file left in place for forensics
  EXPECT_EQ(vol.pending_repairs(), 1u);  // damage still queued
}

TEST_F(DegradedReadTest, LossBeyondToleranceIsExplicitNeverSilent) {
  VolumeStore vol = encode();
  // Two nodes of the same local stripe: beyond lossless recovery for the
  // unimportant tail, but the important prefix survives via the globals.
  ASSERT_TRUE(fs::remove(vol.node_path(0)));
  ASSERT_TRUE(fs::remove(vol.node_path(1)));

  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_FALSE(result.crc_ok);
  EXPECT_TRUE(result.important_ok);
  EXPECT_GT(result.unrecoverable_bytes, 0u);
  EXPECT_EQ(result.degraded_nodes.size(), 2u);
  const auto out = read_whole_file(dir_ / "out.bin");
  ASSERT_EQ(out.size(), data_.size());
  const std::size_t imp = vol.manifest().important_len;
  EXPECT_TRUE(std::equal(out.begin(),
                         out.begin() + static_cast<std::ptrdiff_t>(imp),
                         data_.begin()));

  // A ranged read of the important prefix alone stays exact.
  std::vector<std::uint8_t> head(imp);
  const auto ranged = vol.read(0, head);
  EXPECT_TRUE(ranged.crc_ok);
  EXPECT_EQ(head, expected_range(vol, 0, imp));
}

TEST_F(DegradedReadTest, RobustnessCountersAdvance) {
  VolumeStore vol = encode();
  corrupt_file_at(vol.node_path(2), 100);

  const std::string before = obs::registry().to_json();
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  const std::string after = obs::registry().to_json();
  for (const char* key :
       {"store.degraded_reads", "store.quarantined_chunks",
        "store.crash_recoveries", "store.repair.queue_depth"}) {
    EXPECT_NE(after.find(key), std::string::npos) << key;
  }
}

}  // namespace
}  // namespace approx::store
