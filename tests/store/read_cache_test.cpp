// ReadCache: property-based model checking of the SLRU + retained-segment
// policy, capacity enforcement, importance-aware retention, invalidation,
// and the end-to-end store wiring (cached reads byte-identical to the
// chunk files, repair invalidating stale entries).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <list>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "store/read_cache.h"
#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

ReadCache::Block make_block(std::size_t size, std::uint8_t fill) {
  return std::make_shared<const std::vector<std::uint8_t>>(size, fill);
}

// --- reference model -------------------------------------------------------

// A deliberately naive mirror of the documented single-shard policy: three
// recency lists (front = MRU) and the exact promotion / demotion / eviction
// rules from read_cache.h, with none of the real cache's sharding or
// locking.  Divergence between the two over a random op stream is a bug in
// one of them.
class ModelCache {
 public:
  ModelCache(std::size_t capacity, double important_share,
             double protected_share)
      : capacity_(capacity),
        retained_budget_(static_cast<std::size_t>(
            important_share * static_cast<double>(capacity))),
        protected_budget_(static_cast<std::size_t>(
            protected_share * static_cast<double>(capacity))) {}

  enum Seg { kProbation = 0, kProtected = 1, kRetained = 2 };
  struct Entry {
    std::uint64_t key;
    std::size_t size;
  };

  bool get(std::uint64_t key) {
    for (int seg = 0; seg < 3; ++seg) {
      auto it = find(seg, key);
      if (it == lists_[seg].end()) continue;
      if (seg == kProbation) {
        const Entry e = *it;
        lists_[kProbation].erase(it);
        lists_[kProtected].push_front(e);
        while (seg_bytes(kProtected) > protected_budget_ &&
               lists_[kProtected].size() > 1) {
          lists_[kProbation].push_front(lists_[kProtected].back());
          lists_[kProtected].pop_back();
        }
      } else {
        lists_[seg].splice(lists_[seg].begin(), lists_[seg], it);
      }
      return true;
    }
    return false;
  }

  void put(std::uint64_t key, std::size_t size, bool important) {
    if (size == 0 || size > capacity_) return;
    for (int seg = 0; seg < 3; ++seg) {
      auto it = find(seg, key);
      if (it == lists_[seg].end()) continue;
      // Replace in place: refresh recency (and upgrade to retained when
      // an important put lands on a plain entry).
      const int target = important ? kRetained : seg;
      lists_[seg].erase(it);
      lists_[target].push_front(Entry{key, size});
      evict_to_budget();
      return;
    }
    const int seg = important ? kRetained : kProbation;
    lists_[seg].push_front(Entry{key, size});
    evict_to_budget();
  }

  std::size_t invalidate() {
    std::size_t dropped = 0;
    for (auto& list : lists_) {
      dropped += list.size();
      list.clear();
    }
    return dropped;
  }

  std::size_t bytes() const {
    return seg_bytes(kProbation) + seg_bytes(kProtected) +
           seg_bytes(kRetained);
  }
  std::uint64_t evictions() const { return evictions_; }

  bool contains(std::uint64_t key) const {
    for (int seg = 0; seg < 3; ++seg) {
      for (const Entry& e : lists_[seg]) {
        if (e.key == key) return true;
      }
    }
    return false;
  }

 private:
  std::list<Entry>::iterator find(int seg, std::uint64_t key) {
    for (auto it = lists_[seg].begin(); it != lists_[seg].end(); ++it) {
      if (it->key == key) return it;
    }
    return lists_[seg].end();
  }

  std::size_t seg_bytes(int seg) const {
    std::size_t b = 0;
    for (const Entry& e : lists_[seg]) b += e.size;
    return b;
  }

  void evict_one(int seg) {
    lists_[seg].pop_back();
    ++evictions_;
  }

  void evict_to_budget() {
    while (bytes() > capacity_) {
      if (seg_bytes(kRetained) > retained_budget_ &&
          !lists_[kRetained].empty()) {
        evict_one(kRetained);
      } else if (!lists_[kProbation].empty()) {
        evict_one(kProbation);
      } else if (!lists_[kProtected].empty()) {
        evict_one(kProtected);
      } else if (!lists_[kRetained].empty()) {
        evict_one(kRetained);
      } else {
        break;
      }
    }
  }

  std::size_t capacity_;
  std::size_t retained_budget_;
  std::size_t protected_budget_;
  std::list<Entry> lists_[3];  // front = MRU
  std::uint64_t evictions_ = 0;
};

// --- unit properties -------------------------------------------------------

TEST(ReadCache, MissThenHitReturnsIdenticalBytes) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 1 << 20;
  opts.block_bytes = 1024;
  ReadCache cache(opts);
  EXPECT_EQ(cache.get("vol", 0), nullptr);
  auto blk = make_block(1024, 0xab);
  cache.put("vol", 0, blk, false);
  const ReadCache::Block got = cache.get("vol", 0);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, *blk);
  // Distinct volume tags never collide on the same block index.
  EXPECT_EQ(cache.get("other", 0), nullptr);
  const auto st = cache.stats();
  EXPECT_EQ(st.hits, 1u);
  EXPECT_EQ(st.misses, 2u);
  EXPECT_EQ(st.insertions, 1u);
}

TEST(ReadCache, RejectsEmptyAndOversizedBlocks) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 8 * 1024;
  opts.shards = 1;
  ReadCache cache(opts);
  cache.put("vol", 0, nullptr, false);
  cache.put("vol", 1, make_block(0, 0), false);
  cache.put("vol", 2, make_block(9 * 1024, 1), false);  // > one shard
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ReadCache, CapacityIsNeverExceeded) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 64 * 1024;
  opts.block_bytes = 4096;
  opts.shards = 4;
  ReadCache cache(opts);
  std::mt19937 rng(1234);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng() % 512;
    cache.put("vol", key, make_block(4096, static_cast<std::uint8_t>(key)),
              (rng() % 4) == 0);
    ASSERT_LE(cache.bytes(), opts.capacity_bytes) << "op " << i;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(ReadCache, ImportantBlocksSurviveUnimportantFlood) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 32 * 1024;
  opts.block_bytes = 1024;
  opts.shards = 1;
  opts.important_share = 0.5;
  ReadCache cache(opts);
  // Fill half the budget with retained (important) blocks...
  for (std::uint64_t b = 0; b < 16; ++b) {
    cache.put("vol", b, make_block(1024, 0x11), true);
  }
  // ...then sweep 10x the capacity of one-touch unimportant blocks past.
  for (std::uint64_t b = 1000; b < 1320; ++b) {
    cache.put("vol", b, make_block(1024, 0x22), false);
  }
  // Every important block is still resident: the sweep only displaced
  // other unimportant blocks (scan resistance + retention).
  for (std::uint64_t b = 0; b < 16; ++b) {
    EXPECT_NE(cache.get("vol", b), nullptr) << "important block " << b;
  }
}

TEST(ReadCache, RetainedSegmentCannotSqueezeOutEverythingElse) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 16 * 1024;
  opts.block_bytes = 1024;
  opts.shards = 1;
  opts.important_share = 0.5;
  ReadCache cache(opts);
  // Overfill with important blocks: retention is budgeted, so the cache
  // holds at most capacity and evicts retained LRU beyond the share once
  // plain blocks need room.
  for (std::uint64_t b = 0; b < 64; ++b) {
    cache.put("vol", b, make_block(1024, 0x33), true);
  }
  ASSERT_LE(cache.bytes(), opts.capacity_bytes);
  for (std::uint64_t b = 100; b < 108; ++b) {
    cache.put("vol", b, make_block(1024, 0x44), false);
  }
  // The unimportant newcomers got space: retained yielded down to its
  // reserved share (8 KiB = 8 blocks here).
  std::size_t unimportant_resident = 0;
  for (std::uint64_t b = 100; b < 108; ++b) {
    if (cache.get("vol", b) != nullptr) ++unimportant_resident;
  }
  EXPECT_GT(unimportant_resident, 0u);
  EXPECT_LE(cache.bytes(), opts.capacity_bytes);
}

TEST(ReadCache, InvalidateDropsOnlyTheNamedVolume) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 1 << 20;
  ReadCache cache(opts);
  for (std::uint64_t b = 0; b < 8; ++b) {
    cache.put("a", b, make_block(512, 1), false);
    cache.put("b", b, make_block(512, 2), false);
  }
  EXPECT_EQ(cache.invalidate("a"), 8u);
  for (std::uint64_t b = 0; b < 8; ++b) {
    EXPECT_EQ(cache.get("a", b), nullptr);
    EXPECT_NE(cache.get("b", b), nullptr);
  }
  EXPECT_EQ(cache.stats().invalidations, 8u);
}

TEST(ReadCache, InvalidateBlocksDropsTheRange) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 1 << 20;
  ReadCache cache(opts);
  for (std::uint64_t b = 0; b < 10; ++b) {
    cache.put("vol", b, make_block(512, 1), false);
  }
  EXPECT_EQ(cache.invalidate_blocks("vol", 3, 6), 4u);
  for (std::uint64_t b = 0; b < 10; ++b) {
    const bool resident = cache.get("vol", b) != nullptr;
    EXPECT_EQ(resident, b < 3 || b > 6) << "block " << b;
  }
}

// --- model check ------------------------------------------------------------

// 10k random seeded ops against a single-shard cache and the reference
// model in lockstep: every get must agree (hit vs miss), byte totals must
// agree, eviction counts must agree, and the capacity invariant must hold
// after every op.  Several seeds to cover different interleavings.
class ReadCacheModelTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ReadCacheModelTest, MatchesReferenceModelOver10kOps) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 24 * 1024;
  opts.block_bytes = 512;
  opts.shards = 1;  // deterministic global eviction order
  opts.important_share = 0.5;
  opts.protected_share = 0.6;
  ReadCache cache(opts);
  ModelCache model(opts.capacity_bytes, opts.important_share,
                   opts.protected_share);

  std::mt19937 rng(GetParam());
  const std::size_t sizes[] = {512, 1024, 1536};
  for (int op = 0; op < 10000; ++op) {
    const std::uint64_t key = rng() % 96;
    const int kind = static_cast<int>(rng() % 16);
    if (kind < 9) {  // get
      const bool model_hit = model.get(key);
      const ReadCache::Block got = cache.get("vol", key);
      ASSERT_EQ(got != nullptr, model_hit) << "op " << op << " key " << key;
    } else if (kind < 15) {  // put
      const std::size_t size = sizes[rng() % 3];
      const bool important = (rng() % 4) == 0;
      model.put(key, size, important);
      cache.put("vol", key,
                make_block(size, static_cast<std::uint8_t>(key)), important);
    } else {  // occasional full invalidation
      const std::size_t model_dropped = model.invalidate();
      ASSERT_EQ(cache.invalidate("vol"), model_dropped) << "op " << op;
    }
    ASSERT_EQ(cache.bytes(), model.bytes()) << "op " << op;
    ASSERT_LE(cache.bytes(), opts.capacity_bytes) << "op " << op;
    ASSERT_EQ(cache.stats().evictions, model.evictions()) << "op " << op;
  }
  // Final sweep: residency agrees key by key (probed via the model's
  // non-mutating membership check and one last mutating get on both).
  for (std::uint64_t key = 0; key < 96; ++key) {
    const bool model_resident = model.contains(key);
    const bool model_hit = model.get(key);
    ASSERT_EQ(model_hit, model_resident);
    ASSERT_EQ(cache.get("vol", key) != nullptr, model_resident)
        << "final key " << key;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadCacheModelTest,
                         ::testing::Values(1u, 42u, 20260807u, 0xdeadbeefu));

// Counter consistency across a sharded cache (where eviction order is not
// globally deterministic, the accounting identities still hold).
TEST(ReadCache, CountersAreConsistentUnderRandomOps) {
  ReadCacheOptions opts;
  opts.capacity_bytes = 128 * 1024;
  opts.block_bytes = 1024;
  opts.shards = 8;
  ReadCache cache(opts);
  std::mt19937 rng(777);
  std::uint64_t gets = 0, puts = 0, rejected = 0;
  for (int op = 0; op < 10000; ++op) {
    const std::uint64_t key = rng() % 1024;
    if (rng() % 2 == 0) {
      ++gets;
      (void)cache.get("vol", key);
    } else {
      const std::size_t size = (rng() % 8 == 0) ? 0 : 1024;  // some rejects
      if (size == 0) ++rejected;
      ++puts;
      cache.put("vol", key, make_block(size, 0x55), rng() % 3 == 0);
    }
    ASSERT_LE(cache.bytes(), opts.capacity_bytes);
  }
  const auto st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, gets);
  EXPECT_EQ(st.insertions, puts - rejected);
  // Evicted + resident accounts for every inserted byte: insertions and
  // replacements of live keys can shrink but never grow past budget.
  EXPECT_GT(st.evictions, 0u);
  EXPECT_LE(cache.bytes(), opts.capacity_bytes);
}

TEST(ReadCache, ResolveCapacityPrefersExplicitOverEnv) {
  ASSERT_EQ(setenv("APPROX_CACHE_MB", "7", 1), 0);
  EXPECT_EQ(resolve_cache_capacity(3), 3u * 1024 * 1024);
  EXPECT_EQ(resolve_cache_capacity(0), 0u);  // explicit 0 = disabled
  EXPECT_EQ(resolve_cache_capacity(-1), 7u * 1024 * 1024);
  ASSERT_EQ(setenv("APPROX_CACHE_MB", "junk", 1), 0);
  EXPECT_EQ(resolve_cache_capacity(-1), 0u);
  ASSERT_EQ(unsetenv("APPROX_CACHE_MB"), 0);
  EXPECT_EQ(resolve_cache_capacity(-1), 0u);
}

// --- store wiring -----------------------------------------------------------

class CachedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxcache_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data_.resize(200000);
    std::mt19937 rng(99);
    for (auto& b : data_) b = static_cast<std::uint8_t>(rng());
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  VolumeStore encode_cached(int cache_mb = 8) {
    StoreOptions opts;
    opts.io_payload = 4096;
    opts.cache_mb = cache_mb;
    return VolumeStore::encode_file(
        io_, input_, dir_ / "vol",
        {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even}, 1024,
        std::nullopt, opts);
  }

  PosixIoBackend io_;
  fs::path dir_;
  fs::path input_;
  std::vector<std::uint8_t> data_;
};

TEST_F(CachedStoreTest, CachedReadsAreByteIdenticalToBackend) {
  VolumeStore vol = encode_cached();
  ASSERT_NE(vol.read_cache(), nullptr);
  std::mt19937 rng(4242);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t off = rng() % (data_.size() - 1);
    const std::size_t len =
        1 + rng() % std::min<std::size_t>(data_.size() - off, 9000);
    std::vector<std::uint8_t> out(len);
    const auto res = vol.read(off, out);
    ASSERT_TRUE(res.crc_ok) << "off=" << off << " len=" << len;
    ASSERT_EQ(res.bytes, len);
    ASSERT_EQ(0, std::memcmp(out.data(), data_.data() + off, len))
        << "off=" << off << " len=" << len;
  }
  const auto st = vol.read_cache()->stats();
  EXPECT_GT(st.hits, 0u);  // repeat ranges actually served from memory
}

TEST_F(CachedStoreTest, RepeatReadStopsTouchingChunkFiles) {
  VolumeStore vol = encode_cached();
  std::vector<std::uint8_t> out(8192);
  ASSERT_TRUE(vol.read(0, out).crc_ok);
  const auto cold = vol.read_cache()->stats();
  ASSERT_TRUE(vol.read(0, out).crc_ok);
  const auto warm = vol.read_cache()->stats();
  // The warm read was pure hits: no new insertions, no new misses.
  EXPECT_EQ(warm.insertions, cold.insertions);
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GT(warm.hits, cold.hits);
}

TEST_F(CachedStoreTest, CacheDisabledByDefault) {
  ASSERT_EQ(unsetenv("APPROX_CACHE_MB"), 0);
  StoreOptions opts;
  opts.io_payload = 4096;
  VolumeStore vol = VolumeStore::encode_file(
      io_, input_, dir_ / "vol",
      {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even}, 1024,
      std::nullopt, opts);
  EXPECT_EQ(vol.read_cache(), nullptr);
  std::vector<std::uint8_t> out(512);
  EXPECT_TRUE(vol.read(100, out).crc_ok);
}

TEST_F(CachedStoreTest, DegradedFillIsServedAndCached) {
  VolumeStore vol = encode_cached();
  // Kill one node: reads reconstruct through the codec, and the exact
  // reconstruction is admitted to the cache.
  ASSERT_TRUE(fs::remove(vol.node_path(1)));
  std::vector<std::uint8_t> out(4096);
  const auto res = vol.read(0, out);
  ASSERT_TRUE(res.crc_ok);
  EXPECT_FALSE(res.degraded_nodes.empty());
  EXPECT_EQ(0, std::memcmp(out.data(), data_.data(), out.size()));
  // Warm read: served from cache, no second reconstruction bookkeeping.
  const auto res2 = vol.read(0, out);
  EXPECT_TRUE(res2.crc_ok);
  EXPECT_TRUE(res2.degraded_nodes.empty());
  EXPECT_EQ(0, std::memcmp(out.data(), data_.data(), out.size()));
}

TEST_F(CachedStoreTest, RepairInvalidatesCachedEntries) {
  VolumeStore vol = encode_cached();
  ASSERT_NE(vol.read_cache(), nullptr);
  // Degraded read fills the cache from a reconstruction...
  ASSERT_TRUE(fs::remove(vol.node_path(2)));
  std::vector<std::uint8_t> out(8192);
  ASSERT_TRUE(vol.read(0, out).crc_ok);
  EXPECT_GT(vol.read_cache()->bytes(), 0u);
  const auto before = vol.read_cache()->stats();

  // ...repair rewrites the chunk files and must drop those entries.
  ScrubService scrubber(vol);
  const auto outcome = scrubber.repair({});
  ASSERT_TRUE(outcome.attempted);
  const auto after = vol.read_cache()->stats();
  EXPECT_GT(after.invalidations, before.invalidations)
      << "repair did not invalidate the hot tier";
  EXPECT_EQ(vol.read_cache()->bytes(), 0u);

  // Post-repair reads refill from the healthy chunk files and still serve
  // exact bytes (no stale pre-repair blocks survived).
  const auto res = vol.read(0, out);
  ASSERT_TRUE(res.crc_ok);
  EXPECT_TRUE(res.degraded_nodes.empty());
  EXPECT_EQ(0, std::memcmp(out.data(), data_.data(), out.size()));
  const auto refilled = vol.read_cache()->stats();
  EXPECT_GT(refilled.insertions, before.insertions);
}

TEST_F(CachedStoreTest, DrainPendingInvalidatesAfterBackgroundRepair) {
  VolumeStore vol = encode_cached();
  ASSERT_TRUE(fs::remove(vol.node_path(0)));
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(vol.read(0, out).crc_ok);  // enqueues node 0 for repair
  ASSERT_GT(vol.pending_repairs(), 0u);
  EXPECT_GT(vol.read_cache()->bytes(), 0u);

  ScrubService scrubber(vol);
  const auto outcome = scrubber.drain_pending({});
  ASSERT_TRUE(outcome.attempted);
  EXPECT_EQ(vol.read_cache()->bytes(), 0u);
  EXPECT_EQ(vol.pending_repairs(), 0u);

  const auto res = vol.read(0, out);
  ASSERT_TRUE(res.crc_ok);
  EXPECT_TRUE(res.degraded_nodes.empty());
  EXPECT_EQ(0, std::memcmp(out.data(), data_.data(), out.size()));
}

TEST_F(CachedStoreTest, SharedCacheIsKeyedByVolumeDirectory) {
  auto shared = std::make_shared<ReadCache>(ReadCacheOptions{
      .capacity_bytes = 4u << 20, .block_bytes = 64 * 1024});
  StoreOptions opts;
  opts.io_payload = 4096;
  opts.cache = shared;
  VolumeStore a = VolumeStore::encode_file(
      io_, input_, dir_ / "vol_a",
      {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even}, 1024,
      std::nullopt, opts);
  VolumeStore b = VolumeStore::encode_file(
      io_, input_, dir_ / "vol_b",
      {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even}, 1024,
      std::nullopt, opts);
  EXPECT_EQ(a.read_cache(), shared.get());
  EXPECT_EQ(b.read_cache(), shared.get());
  EXPECT_NE(a.cache_tag(), b.cache_tag());
  std::vector<std::uint8_t> out(4096);
  ASSERT_TRUE(a.read(0, out).crc_ok);
  ASSERT_TRUE(b.read(0, out).crc_ok);
  // Invalidating one volume's entries leaves the other's resident.
  const std::size_t dropped = shared->invalidate(a.cache_tag());
  EXPECT_GT(dropped, 0u);
  EXPECT_GT(shared->bytes(), 0u);  // b's blocks survive
}

}  // namespace
}  // namespace approx::store
