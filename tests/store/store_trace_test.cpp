// Request-scoped tracing through the store: a degraded read's fan-out
// (pipeline stages, reconstruction, repair-queue enqueue) must stitch into
// one connected causal tree in the Chrome trace export, and concurrent
// requests sharing the global thread pool must never bleed identity into
// each other's trees.  The concurrency case doubles as the TSan regression
// test for TraceContext propagation.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "../support/test_json.h"
#include "obs/span.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

using testsupport::JsonParser;
using testsupport::JsonValue;

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

// One exported span, decoded from the Chrome trace-event args.
struct ExportedSpan {
  std::string name;
  std::uint64_t trace = 0;
  std::uint64_t span = 0;
  std::uint64_t parent = 0;
};

std::vector<ExportedSpan> parse_chrome(const std::string& json) {
  std::vector<ExportedSpan> out;
  JsonValue doc = JsonParser(json).parse();
  EXPECT_TRUE(doc.is_object());
  if (!doc.is_object()) return out;
  for (const auto& ev : doc.object().at("traceEvents").array()) {
    const auto& o = ev.object();
    EXPECT_EQ(o.at("ph").string(), "X");
    const auto& args = o.at("args").object();
    out.push_back(ExportedSpan{
        o.at("name").string(),
        static_cast<std::uint64_t>(args.at("trace").number()),
        static_cast<std::uint64_t>(args.at("span").number()),
        static_cast<std::uint64_t>(args.at("parent").number())});
  }
  return out;
}

// A well-formed trace: exactly one root (parent 0), and every other span's
// parent is a span of the same trace.  Returns the root's span id.
std::uint64_t expect_tree(const std::vector<ExportedSpan>& spans,
                          std::uint64_t trace) {
  std::set<std::uint64_t> ids;
  for (const auto& s : spans) {
    if (s.trace == trace) ids.insert(s.span);
  }
  std::uint64_t root = 0;
  int roots = 0;
  for (const auto& s : spans) {
    if (s.trace != trace) continue;
    if (s.parent == 0) {
      ++roots;
      root = s.span;
    } else {
      EXPECT_TRUE(ids.count(s.parent))
          << s.name << " parents a span outside its trace";
    }
  }
  EXPECT_EQ(roots, 1) << "trace " << trace << " must have exactly one root";
  return root;
}

class StoreTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxtrace_" + std::string(::testing::UnitTest::GetInstance()
                                             ->current_test_info()
                                             ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data_ = random_bytes(120000, 99);
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size()));
  }
  void TearDown() override {
    obs::SpanLog::set_enabled(false);
    obs::SpanLog::clear();
    fs::remove_all(dir_);
  }

  VolumeStore encode(const fs::path& vol_dir) {
    return VolumeStore::encode_file(io_, input_, vol_dir, rs_params(), 1024,
                                    std::nullopt, StoreOptions{});
  }

  PosixIoBackend io_;
  fs::path dir_;
  fs::path input_;
  std::vector<std::uint8_t> data_;
};

TEST_F(StoreTraceTest, DegradedReadExportsOneConnectedTree) {
  VolumeStore vol = encode(dir_ / "vol");
  fs::remove(vol.node_path(2));  // force reconstruction on every stripe

  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  std::vector<std::uint8_t> buf(4096);
  {
    // Stand-in for the CLI's root span (approxcli opens "cli.<cmd>").
    obs::ObsSpan root("request.degraded_read");
    const auto res = vol.read(1000, buf, {});
    EXPECT_TRUE(res.crc_ok);
    EXPECT_FALSE(res.degraded_nodes.empty());
  }
  obs::SpanLog::set_enabled(false);
  const std::string json = obs::SpanLog::to_chrome_json();
  const auto spans = parse_chrome(json);

#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(spans.empty());
#else
  ASSERT_FALSE(spans.empty());
  // Single trace: the whole degraded fan-out shares the root's trace id.
  std::set<std::uint64_t> traces;
  for (const auto& s : spans) traces.insert(s.trace);
  ASSERT_EQ(traces.size(), 1u);
  const std::uint64_t root_span = expect_tree(spans, *traces.begin());
  EXPECT_NE(root_span, 0u);

  // The tree reaches from the entry span through the pipeline stages into
  // the repair-queue hand-off.
  std::set<std::string> names;
  for (const auto& s : spans) names.insert(s.name);
  for (const char* required :
       {"request.degraded_read", "store.ranged_read", "store.pipeline.read",
        "store.pipeline.process", "store.stripe_read",
        "store.repair.enqueue"}) {
    EXPECT_TRUE(names.count(required)) << "missing span " << required;
  }
#endif
}

TEST_F(StoreTraceTest, ConcurrentRequestsKeepTreesDisjointAndWellFormed) {
  VolumeStore setup = encode(dir_ / "vol");
  fs::remove(setup.node_path(1));

  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  constexpr int kReaders = 3;
  constexpr int kReadsPerThread = 4;

  // One thread streams pipelined encodes while others hammer degraded
  // ranged reads on a shared pool: helping waits will interleave foreign
  // requests on every thread, which is exactly what must not leak trace
  // identity.  Run under TSan this is also the data-race regression test
  // for the context plumbing.
  std::vector<std::thread> threads;
  threads.emplace_back([&] {
    obs::ObsSpan root("request.encode");
    encode(dir_ / "vol_concurrent");
  });
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      VolumeStore vol(io_, dir_ / "vol", StoreOptions{});
      std::vector<std::uint8_t> buf(2048);
      for (int i = 0; i < kReadsPerThread; ++i) {
        obs::ObsSpan root("request.read");
        const auto res = vol.read(
            static_cast<std::uint64_t>((t * kReadsPerThread + i) * 512), buf,
            {});
        EXPECT_TRUE(res.crc_ok);
      }
    });
  }
  for (auto& th : threads) th.join();
  obs::SpanLog::set_enabled(false);
  const auto spans = parse_chrome(obs::SpanLog::to_chrome_json());

#ifdef APPROX_OBS_OFF
  EXPECT_TRUE(spans.empty());
#else
  // Span ids are globally unique; every trace is a well-formed tree.
  std::set<std::uint64_t> all_ids;
  std::map<std::uint64_t, int> trace_sizes;
  for (const auto& s : spans) {
    EXPECT_TRUE(all_ids.insert(s.span).second) << "duplicate span id";
    ++trace_sizes[s.trace];
  }
  // One trace per request: the encode plus every individual read.
  EXPECT_EQ(trace_sizes.size(),
            1u + static_cast<std::size_t>(kReaders * kReadsPerThread));
  for (const auto& [trace, size] : trace_sizes) {
    EXPECT_GE(size, 2) << "request trace should contain nested spans";
    expect_tree(spans, trace);
  }
#endif
}

}  // namespace
}  // namespace approx::store