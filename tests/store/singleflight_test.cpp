// SingleFlight: leader/follower coalescing under concurrency - exactly one
// execution per cohort, identical results for followers, leader-failure
// re-election, freshness across rounds, helping waits, and the end-to-end
// guarantee that concurrent degraded reads of the same stripe share one
// decode.  This suite runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "store/read_cache.h"
#include "store/singleflight.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::registry().counter(name).value();
}

TEST(SingleFlight, SingleCallerRunsItsOwnFunction) {
  SingleFlight sf;
  std::atomic<int> runs{0};
  const auto v = sf.run_as<int>("k", [&] {
    runs.fetch_add(1);
    return std::make_shared<int>(7);
  });
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(runs.load(), 1);
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlight, SequentialRoundsAreFresh) {
  // A round retires when its leader finishes: later callers must re-run fn
  // (they may be observing a repair or cache fill between rounds).
  SingleFlight sf;
  std::atomic<int> runs{0};
  for (int i = 0; i < 3; ++i) {
    const auto v = sf.run_as<int>("k", [&] {
      return std::make_shared<int>(runs.fetch_add(1));
    });
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(runs.load(), 3);
}

TEST(SingleFlight, ConcurrentCallersShareOneExecution) {
  SingleFlight sf;
  const int kThreads = 16;
  std::atomic<int> runs{0};
  std::atomic<int> arrived{0};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  const std::uint64_t leaders_before = counter_value("store.coalesce.leaders");
  const std::uint64_t followers_before =
      counter_value("store.coalesce.followers");

  std::vector<std::shared_ptr<int>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      arrived.fetch_add(1);
      results[static_cast<std::size_t>(t)] = sf.run_as<int>("stripe:0", [&] {
        // Leader blocks until the main thread confirms every thread called
        // run(), so all 16 join this round.
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        runs.fetch_add(1);
        return std::make_shared<int>(1234);
      });
    });
  }
  while (arrived.load() != kThreads) std::this_thread::yield();
  // Give the stragglers a moment to get from "arrived" into run().
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  for (auto& th : threads) th.join();

  // Exactly one execution; every caller got the same object.
  EXPECT_EQ(runs.load(), 1);
  for (const auto& r : results) {
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r.get(), results[0].get());
    EXPECT_EQ(*r, 1234);
  }
  EXPECT_EQ(counter_value("store.coalesce.leaders") - leaders_before, 1u);
  EXPECT_EQ(counter_value("store.coalesce.followers") - followers_before,
            static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlight, LeaderFailurePropagatesAndReelects) {
  SingleFlight sf;
  const int kThreads = 8;
  std::atomic<int> runs{0};
  std::atomic<int> failures{0};
  std::atomic<int> arrived{0};
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  const std::uint64_t reelections_before =
      counter_value("store.coalesce.reelections");

  std::vector<std::shared_ptr<int>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      arrived.fetch_add(1);
      try {
        results[static_cast<std::size_t>(t)] = sf.run_as<int>("k", [&] {
          {
            std::unique_lock<std::mutex> lock(mu);
            cv.wait(lock, [&] { return release; });
          }
          // First execution dies; the re-elected leader succeeds.
          if (runs.fetch_add(1) == 0) throw StoreError(IoCode::kIoError, "boom");
          return std::make_shared<int>(42);
        });
      } catch (const StoreError&) {
        failures.fetch_add(1);
      }
    });
  }
  while (arrived.load() != kThreads) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
    cv.notify_all();
  }
  for (auto& th : threads) th.join();

  // fn ran exactly twice (failed leader + promoted follower); only the
  // failed leader saw the exception, everyone else got the value.
  EXPECT_EQ(runs.load(), 2);
  EXPECT_EQ(failures.load(), 1);
  int got_value = 0;
  for (const auto& r : results) {
    if (r != nullptr) {
      EXPECT_EQ(*r, 42);
      ++got_value;
    }
  }
  EXPECT_EQ(got_value, kThreads - 1);
  EXPECT_GE(counter_value("store.coalesce.reelections") - reelections_before,
            1u);
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlight, AllLeadersFailingFailsEveryCaller) {
  SingleFlight sf;
  const int kThreads = 6;
  std::atomic<int> runs{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      try {
        (void)sf.run_as<int>("k", [&]() -> std::shared_ptr<int> {
          runs.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          throw StoreError(IoCode::kIoError, "always");
        });
      } catch (const StoreError&) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Every caller eventually led (or joined a round whose promoted leader
  // was itself) and every one saw the failure; nobody hung (no lost
  // wakeups on the leaderless path).
  EXPECT_EQ(failures.load(), kThreads);
  EXPECT_GE(runs.load(), 1);
  EXPECT_LE(runs.load(), kThreads);
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlight, DistinctKeysDoNotCoalesce) {
  SingleFlight sf;
  std::atomic<int> runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto v = sf.run_as<int>("k" + std::to_string(t), [&, t] {
        runs.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return std::make_shared<int>(t);
      });
      EXPECT_EQ(*v, t);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(runs.load(), 8);
}

TEST(SingleFlight, HammeredKeyNeverLosesAWakeup) {
  // Many rounds, many threads, tiny critical sections: a lost wakeup shows
  // up as a hang (ctest TIMEOUT) and a coherence bug as a value mismatch.
  SingleFlight sf;
  const int kThreads = 8, kRounds = 200;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::mt19937 rng(std::hash<std::thread::id>{}(
          std::this_thread::get_id()));
      for (int r = 0; r < kRounds; ++r) {
        const auto v = sf.run_as<std::string>("hot", [&] {
          if (rng() % 4 == 0) std::this_thread::yield();
          return std::make_shared<std::string>("payload");
        });
        if (v == nullptr || *v != "payload") mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(sf.in_flight(), 0u);
}

TEST(SingleFlight, FollowersHelpRunPoolTasks) {
  // Followers supplied with a pool drain queued tasks while waiting, so a
  // follower that is itself a pool worker cannot park the pool: here the
  // leader's completion depends on a task that only the blocked follower
  // (the pool's sole worker) can run.
  ThreadPool pool(1);
  SingleFlight sf(&pool);
  std::atomic<bool> leader_entered{false};
  std::atomic<bool> side_task_ran{false};
  std::atomic<int> runs{0};

  // Leader on its own thread: fn blocks until the side task has run.
  std::shared_ptr<int> leader_value;
  std::thread leader([&] {
    leader_value = sf.run_as<int>("k", [&] {
      leader_entered.store(true);
      while (!side_task_ran.load()) std::this_thread::yield();
      runs.fetch_add(1);
      return std::make_shared<int>(1);
    });
  });

  // The sole worker queues the side task *behind itself* and then joins
  // the leader's round as a follower; only its helping wait can pop the
  // side task, so completion of this test proves the helping property.
  auto follower = pool.submit([&] {
    while (!leader_entered.load()) std::this_thread::yield();
    pool.submit([&] { side_task_ran.store(true); });
    const auto v = sf.run_as<int>("k", [&] {
      runs.fetch_add(1);
      return std::make_shared<int>(2);
    });
    EXPECT_EQ(*v, 1);  // joined the leader's round, shared its value
  });
  follower.wait();
  leader.join();
  ASSERT_NE(leader_value, nullptr);
  EXPECT_EQ(*leader_value, 1);
  EXPECT_TRUE(side_task_ran.load());
  EXPECT_EQ(runs.load(), 1);
}

// --- end-to-end: concurrent degraded reads share one decode -----------------

class CoalescedStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxsf_" + std::string(::testing::UnitTest::GetInstance()
                                          ->current_test_info()
                                          ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data_.resize(150000);
    std::mt19937 rng(31);
    for (auto& b : data_) b = static_cast<std::uint8_t>(rng());
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  PosixIoBackend io_;
  fs::path dir_;
  fs::path input_;
  std::vector<std::uint8_t> data_;
};

TEST_F(CoalescedStoreTest, ConcurrentDegradedReadsShareOneReconstruction) {
  StoreOptions opts;
  opts.io_payload = 4096;
  opts.cache_mb = 8;
  VolumeStore vol = VolumeStore::encode_file(
      io_, input_, dir_ / "vol",
      {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even}, 1024,
      std::nullopt, opts);
  ASSERT_TRUE(fs::remove(vol.node_path(1)));

  const std::uint64_t bytes_before =
      obs::registry().sharded_counter("store.read.bytes").value();
  const std::uint64_t leaders_before = counter_value("store.coalesce.leaders");

  const int kThreads = 8;
  const std::size_t kLen = 4096;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::uint8_t> out(kLen);
      const auto res = vol.read(0, out);  // same stripe, same block range
      if (!res.crc_ok ||
          std::memcmp(out.data(), data_.data(), kLen) != 0) {
        bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);

  const std::uint64_t burst_bytes =
      obs::registry().sharded_counter("store.read.bytes").value() -
      bytes_before;
  const std::uint64_t leaders =
      counter_value("store.coalesce.leaders") - leaders_before;
  EXPECT_GE(leaders, 1u);
  ASSERT_GT(burst_bytes, 0u);

  // Afterwards the range is cached: a warm read touches no chunk files.
  const std::uint64_t warm_before =
      obs::registry().sharded_counter("store.read.bytes").value();
  std::vector<std::uint8_t> out(kLen);
  ASSERT_TRUE(vol.read(0, out).crc_ok);
  EXPECT_EQ(obs::registry().sharded_counter("store.read.bytes").value(),
            warm_before);

  // Amplification bound: measure one uncoalesced fill of the same range
  // (cache flushed) and require the whole 8-thread burst to have cost at
  // most 4 fills - at least a 2x reduction over the uncoalesced 8, and in
  // the common schedule exactly 1.
  vol.read_cache()->invalidate(vol.cache_tag());
  const std::uint64_t single_before =
      obs::registry().sharded_counter("store.read.bytes").value();
  ASSERT_TRUE(vol.read(0, out).crc_ok);
  const std::uint64_t single_bytes =
      obs::registry().sharded_counter("store.read.bytes").value() -
      single_before;
  ASSERT_GT(single_bytes, 0u);
  EXPECT_LE(burst_bytes, 4 * single_bytes)
      << "coalescing failed: " << kThreads << " concurrent degraded reads "
      << "cost " << burst_bytes << " backend bytes vs " << single_bytes
      << " for one fill";
}

}  // namespace
}  // namespace approx::store
