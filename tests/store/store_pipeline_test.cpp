// Multi-stripe pipeline engine: ordering, backpressure, failure
// attribution and slot poisoning at the engine level, plus store-level
// depth-invariance (any depth produces byte-identical volumes, decodes and
// degraded reads to depth 1) and the error-path buffer-reuse regression.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "common/error.h"
#include "store/pipeline.h"
#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

std::vector<std::uint8_t> read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

// Event recorder shared by the engine tests: every stage call appends
// "<stage><chunk>@<slot>" under a lock.
struct Trace {
  std::mutex mu;
  std::vector<std::string> events;
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};

  void add(const char* stage, std::uint64_t chunk, int slot) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(std::string(stage) + std::to_string(chunk) + "@" +
                     std::to_string(slot));
  }
  std::vector<std::string> of(const std::string& prefix) {
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> out;
    for (const auto& e : events) {
      if (e.rfind(prefix, 0) == 0) out.push_back(e);
    }
    return out;
  }
};

TEST(PipelineEngine, AllStagesRunOnceInSlotOrder) {
  ThreadPool pool(4);
  Trace trace;
  const int depth = 4;
  const std::uint64_t chunks = 23;

  PipelineStages stages;
  stages.read = [&](std::uint64_t c, int s) {
    EXPECT_EQ(s, static_cast<int>(c % depth));
    const int now = trace.in_flight.fetch_add(1) + 1;
    int seen = trace.max_in_flight.load();
    while (now > seen && !trace.max_in_flight.compare_exchange_weak(seen, now)) {
    }
    trace.add("r", c, s);
    return IoStatus::success();
  };
  stages.process = [&](std::uint64_t c, int s) {
    trace.add("p", c, s);
    return IoStatus::success();
  };
  stages.write = [&](std::uint64_t c, int s) {
    trace.add("w", c, s);
    trace.in_flight.fetch_sub(1);
    return IoStatus::success();
  };

  const IoStatus st = run_pipeline(pool, chunks, depth, stages);
  EXPECT_TRUE(st.ok());

  // Reads issue in chunk order; writes retire in chunk order; every chunk
  // passes through every stage exactly once.
  for (const char* prefix : {"r", "p", "w"}) {
    const auto evs = trace.of(prefix);
    ASSERT_EQ(evs.size(), chunks) << prefix;
  }
  const auto reads = trace.of("r");
  const auto writes = trace.of("w");
  for (std::uint64_t c = 0; c < chunks; ++c) {
    const std::string at =
        std::to_string(c) + "@" + std::to_string(c % depth);
    EXPECT_EQ(reads[c], "r" + at);
    EXPECT_EQ(writes[c], "w" + at);
  }
  // Backpressure: never more than `depth` chunks between read and write.
  EXPECT_LE(trace.max_in_flight.load(), depth);
}

TEST(PipelineEngine, DepthOneFullySerializesStages) {
  ThreadPool pool(4);
  Trace trace;
  PipelineStages stages;
  stages.read = [&](std::uint64_t c, int s) {
    trace.add("r", c, s);
    return IoStatus::success();
  };
  stages.process = [&](std::uint64_t c, int s) {
    trace.add("p", c, s);
    return IoStatus::success();
  };
  stages.write = [&](std::uint64_t c, int s) {
    trace.add("w", c, s);
    return IoStatus::success();
  };
  ASSERT_TRUE(run_pipeline(pool, 5, 1, stages).ok());
  // Exactly the legacy sequential loop: r0 p0 w0 r1 p1 w1 ...
  std::vector<std::string> expect;
  for (std::uint64_t c = 0; c < 5; ++c) {
    for (const char* stage : {"r", "p", "w"}) {
      expect.push_back(std::string(stage) + std::to_string(c) + "@0");
    }
  }
  EXPECT_EQ(trace.events, expect);
}

TEST(PipelineEngine, ZeroChunksSucceedsWithoutStageCalls) {
  ThreadPool pool(2);
  PipelineStages stages;
  stages.read = [](std::uint64_t, int) {
    ADD_FAILURE() << "read on empty pipeline";
    return IoStatus::success();
  };
  stages.process = [](std::uint64_t, int) { return IoStatus::success(); };
  EXPECT_TRUE(run_pipeline(pool, 0, 4, stages).ok());
}

TEST(PipelineEngine, ReadFailureStopsReadsAndKeepsEarlierWrites) {
  ThreadPool pool(4);
  Trace trace;
  std::atomic<bool> reset_called{false};
  const std::uint64_t fail_at = 5;

  PipelineStages stages;
  stages.read = [&](std::uint64_t c, int s) {
    trace.add("r", c, s);
    if (c == fail_at) return IoStatus{IoCode::kIoError, "injected read"};
    return IoStatus::success();
  };
  stages.process = [&](std::uint64_t c, int s) {
    trace.add("p", c, s);
    return IoStatus::success();
  };
  stages.write = [&](std::uint64_t c, int s) {
    trace.add("w", c, s);
    return IoStatus::success();
  };
  stages.reset = [&](int) { reset_called.store(true); };

  const IoStatus st = run_pipeline(pool, 100, 4, stages);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, IoCode::kIoError);
  EXPECT_EQ(st.message, "injected read");
  EXPECT_TRUE(reset_called.load()) << "failed slot was not poisoned";

  // No read past the failing chunk; the failing chunk never processed;
  // every chunk before it still wrote.
  EXPECT_EQ(trace.of("r").size(), fail_at + 1);
  for (const auto& e : trace.of("p")) {
    EXPECT_NE(e.substr(1, e.find('@') - 1), std::to_string(fail_at));
  }
  EXPECT_EQ(trace.of("w").size(), fail_at);
}

TEST(PipelineEngine, ProcessFailureBlocksItsOwnAndLaterWrites) {
  ThreadPool pool(4);
  Trace trace;
  std::atomic<bool> reset_called{false};
  const std::uint64_t fail_at = 3;

  PipelineStages stages;
  stages.read = [&](std::uint64_t, int) { return IoStatus::success(); };
  stages.process = [&](std::uint64_t c, int) {
    if (c == fail_at) return IoStatus{IoCode::kShortRead, "injected process"};
    return IoStatus::success();
  };
  stages.write = [&](std::uint64_t c, int s) {
    trace.add("w", c, s);
    return IoStatus::success();
  };
  stages.reset = [&](int) { reset_called.store(true); };

  const IoStatus st = run_pipeline(pool, 50, 4, stages);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, IoCode::kShortRead);
  EXPECT_TRUE(reset_called.load());
  const auto writes = trace.of("w");
  EXPECT_EQ(writes.size(), fail_at);
  for (std::uint64_t c = 0; c < writes.size(); ++c) {
    EXPECT_EQ(writes[c].substr(1, writes[c].find('@') - 1), std::to_string(c));
  }
}

TEST(PipelineEngine, WriteFailureStopsLaterWrites) {
  ThreadPool pool(4);
  Trace trace;
  const std::uint64_t fail_at = 2;
  PipelineStages stages;
  stages.read = [&](std::uint64_t, int) { return IoStatus::success(); };
  stages.process = [&](std::uint64_t, int) { return IoStatus::success(); };
  stages.write = [&](std::uint64_t c, int s) {
    if (c == fail_at) return IoStatus{IoCode::kNoSpace, "injected write"};
    trace.add("w", c, s);
    return IoStatus::success();
  };
  const IoStatus st = run_pipeline(pool, 40, 4, stages);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, IoCode::kNoSpace);
  EXPECT_EQ(trace.of("w").size(), fail_at);
}

TEST(PipelineEngine, EarliestFailureInChunkStageOrderWins) {
  // A later-chunk process failure must not mask an earlier-chunk one.
  ThreadPool pool(4);
  PipelineStages stages;
  stages.read = [&](std::uint64_t, int) { return IoStatus::success(); };
  stages.process = [&](std::uint64_t c, int) {
    if (c == 2) return IoStatus{IoCode::kShortRead, "chunk 2"};
    if (c == 1) return IoStatus{IoCode::kIoError, "chunk 1"};
    return IoStatus::success();
  };
  const IoStatus st = run_pipeline(pool, 30, 8, stages);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message, "chunk 1");
}

TEST(PipelineEngine, ProcessExceptionRethrownOnCaller) {
  ThreadPool pool(4);
  PipelineStages stages;
  stages.read = [&](std::uint64_t, int) { return IoStatus::success(); };
  stages.process = [&](std::uint64_t c, int) -> IoStatus {
    if (c == 7) throw InvalidArgument("process boom");
    return IoStatus::success();
  };
  EXPECT_THROW((void)run_pipeline(pool, 20, 4, stages), InvalidArgument);
}

TEST(PipelineEngine, ResolveDepthHonorsRequestEnvAndClamp) {
  ThreadPool pool(4);
  ::unsetenv("APPROX_PIPELINE_DEPTH");
  EXPECT_EQ(resolve_pipeline_depth(1, pool), 1);
  EXPECT_EQ(resolve_pipeline_depth(7, pool), 7);
  EXPECT_EQ(resolve_pipeline_depth(1000, pool), 64);
  const int auto_depth = resolve_pipeline_depth(0, pool);
  EXPECT_GE(auto_depth, 2);
  EXPECT_LE(auto_depth, 8);
  ::setenv("APPROX_PIPELINE_DEPTH", "3", 1);
  EXPECT_EQ(resolve_pipeline_depth(0, pool), 3);
  EXPECT_EQ(resolve_pipeline_depth(5, pool), 5) << "explicit request beats env";
  ::setenv("APPROX_PIPELINE_DEPTH", "9999", 1);
  EXPECT_EQ(resolve_pipeline_depth(0, pool), 64);
  ::unsetenv("APPROX_PIPELINE_DEPTH");
}

// ---------------------------------------------------------------------------
// Store-level depth invariance
// ---------------------------------------------------------------------------

class PipelineDepthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxpipe_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    data_ = random_bytes(50000, 23);
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data_.data()),
              static_cast<std::streamsize>(data_.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions opts(int depth) {
    StoreOptions o;
    o.io_payload = 1024;
    o.pipeline_depth = depth;
    return o;
  }

  fs::path dir_;
  fs::path input_;
  std::vector<std::uint8_t> data_;
};

TEST_F(PipelineDepthTest, EncodeIsByteIdenticalAcrossDepths) {
  PosixIoBackend io;
  const fs::path ref_dir = dir_ / "vol_d1";
  VolumeStore ref = VolumeStore::encode_file(io, input_, ref_dir, rs_params(),
                                             512, std::nullopt, opts(1));
  for (const int depth : {2, 8}) {
    const fs::path vol_dir = dir_ / ("vol_d" + std::to_string(depth));
    VolumeStore vol = VolumeStore::encode_file(
        io, input_, vol_dir, rs_params(), 512, std::nullopt, opts(depth));
    for (int n = 0; n < ref.code().total_nodes(); ++n) {
      EXPECT_EQ(read_whole_file(vol.node_path(n)),
                read_whole_file(ref.node_path(n)))
          << "node " << n << " differs at depth " << depth;
    }
    EXPECT_EQ(vol.manifest().file_crc, ref.manifest().file_crc);
    EXPECT_EQ(vol.manifest().chunks, ref.manifest().chunks);
  }
}

TEST_F(PipelineDepthTest, DecodeAndDegradedReadMatchDepthOne) {
  PosixIoBackend io;
  const fs::path vol_dir = dir_ / "vol";
  VolumeStore::encode_file(io, input_, vol_dir, rs_params(), 512, std::nullopt,
                           opts(1));
  // Knock out one node: every depth must reconstruct identically.
  fs::remove(vol_dir / node_file_name(kVolumeV2, 2));

  VolumeStore::DecodeOptions dopts;
  dopts.quarantine = false;

  std::vector<std::uint8_t> ref_decode;
  std::vector<std::uint8_t> ref_range;
  for (const int depth : {1, 2, 8}) {
    VolumeStore vol(io, vol_dir, opts(depth));
    const fs::path out = dir_ / ("out_d" + std::to_string(depth));
    const auto res = vol.decode_file(out, dopts);
    EXPECT_TRUE(res.crc_ok) << "depth " << depth;
    EXPECT_GT(res.degraded_stripes, 0u);
    const auto decoded = read_whole_file(out);
    EXPECT_EQ(decoded, data_);

    // Ranged degraded read spanning several chunks at an odd offset.
    std::vector<std::uint8_t> range(20011);
    const auto rres = vol.read(1234, range, dopts);
    EXPECT_EQ(rres.bytes, range.size());
    if (depth == 1) {
      ref_decode = decoded;
      ref_range = range;
    } else {
      EXPECT_EQ(decoded, ref_decode) << "depth " << depth;
      EXPECT_EQ(range, ref_range) << "depth " << depth;
    }
    EXPECT_EQ(std::vector<std::uint8_t>(data_.begin() + 1234,
                                        data_.begin() + 1234 + 20011),
              range)
        << "depth " << depth;
  }
}

// Satellite regression: a pipeline whose stage failed must poison its slot
// so a later run through the same store cannot see stale staging data.  A
// mid-stream write fault aborts the decode; after clearing the fault the
// same VolumeStore must decode byte-identically.
TEST_F(PipelineDepthTest, FailedDecodeDoesNotPoisonTheNextOne) {
  PosixIoBackend posix;
  FaultInjectingBackend faulty(posix);
  const fs::path vol_dir = dir_ / "vol";
  VolumeStore::encode_file(posix, input_, vol_dir, rs_params(), 512,
                           std::nullopt, opts(1));

  StoreOptions o = opts(4);
  o.retry.max_attempts = 1;
  o.retry.sleeper = [](std::chrono::microseconds) {};
  VolumeStore vol(faulty, vol_dir, o);

  // Fail the decode's output writes permanently, then unclog.
  FaultInjectingBackend::Fault fault;
  fault.op = FaultInjectingBackend::Op::kWrite;
  fault.path_substr = "broken_out";
  fault.code = IoCode::kIoError;
  fault.times = -1;
  faulty.inject(fault);
  EXPECT_THROW((void)vol.decode_file(dir_ / "broken_out.bin"), StoreError);
  faulty.clear_faults();

  const auto res = vol.decode_file(dir_ / "ok_out.bin");
  EXPECT_TRUE(res.crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "ok_out.bin"), data_);

  // Same regression for a failed encode: the throwing pipeline must abort
  // its writers, and a fresh encode into the same directory succeeds.
  FaultInjectingBackend::Fault efault;
  efault.op = FaultInjectingBackend::Op::kWrite;
  efault.path_substr = "vol2";
  efault.code = IoCode::kNoSpace;
  efault.times = -1;
  faulty.inject(efault);
  EXPECT_THROW(VolumeStore::encode_file(faulty, input_, dir_ / "vol2",
                                        rs_params(), 512, std::nullopt, o),
               StoreError);
  faulty.clear_faults();
  fs::remove_all(dir_ / "vol2");
  VolumeStore vol2 = VolumeStore::encode_file(faulty, input_, dir_ / "vol2",
                                              rs_params(), 512, std::nullopt,
                                              o);
  EXPECT_TRUE(vol2.decode_file(dir_ / "out2.bin").crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "out2.bin"), data_);
}

}  // namespace
}  // namespace approx::store
