// Fault injection: retry/backoff behaviour and failure atomicity of the
// store under transient and permanent I/O errors.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "common/thread_pool.h"

#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

using Op = FaultInjectingBackend::Op;
using Fault = FaultInjectingBackend::Fault;

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

// Retry policy with a recording no-op sleeper so tests never really sleep.
RetryPolicy fast_retry(std::vector<std::chrono::microseconds>* delays = nullptr) {
  RetryPolicy p;
  p.base_delay = std::chrono::microseconds(200);
  p.sleeper = [delays](std::chrono::microseconds d) {
    if (delays != nullptr) delays->push_back(d);
  };
  return p;
}

TEST(WithRetry, TransientFailureRetriedWithExponentialBackoff) {
  std::vector<std::chrono::microseconds> delays;
  const RetryPolicy policy = fast_retry(&delays);
  int calls = 0;
  const IoStatus st = with_retry(policy, [&]() -> IoStatus {
    if (++calls <= 2) return IoStatus::failure(IoCode::kIoError, "transient");
    return IoStatus::success();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], std::chrono::microseconds(200));
  EXPECT_EQ(delays[1], std::chrono::microseconds(400));
}

TEST(WithRetry, PermanentFailureExhaustsAttempts) {
  const RetryPolicy policy = fast_retry();
  int calls = 0;
  const IoStatus st = with_retry(policy, [&]() -> IoStatus {
    ++calls;
    return IoStatus::failure(IoCode::kIoError, "dead device");
  });
  EXPECT_EQ(st.code, IoCode::kIoError);
  EXPECT_EQ(calls, policy.max_attempts);
}

TEST(WithRetry, NonRetryableCodesFailImmediately) {
  for (const IoCode code : {IoCode::kNotFound, IoCode::kNoSpace}) {
    int calls = 0;
    const IoStatus st = with_retry(fast_retry(), [&]() -> IoStatus {
      ++calls;
      return IoStatus::failure(code, "final");
    });
    EXPECT_EQ(st.code, code);
    EXPECT_EQ(calls, 1);
  }
}

// Helper: run a policy against an always-failing op and record every delay.
std::vector<std::chrono::microseconds> delays_of(RetryPolicy policy) {
  std::vector<std::chrono::microseconds> delays;
  policy.sleeper = [&](std::chrono::microseconds d) { delays.push_back(d); };
  (void)with_retry(policy, [] {
    return IoStatus::failure(IoCode::kIoError, "transient");
  });
  return delays;
}

TEST(WithRetry, BackoffIsCappedAtMaxDelay) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.base_delay = std::chrono::microseconds(200);
  policy.max_delay = std::chrono::microseconds(1000);
  const auto delays = delays_of(policy);
  // 200, 400, 800 then pinned to the cap for every further attempt.
  ASSERT_EQ(delays.size(), 7u);
  EXPECT_EQ(delays[0], std::chrono::microseconds(200));
  EXPECT_EQ(delays[1], std::chrono::microseconds(400));
  EXPECT_EQ(delays[2], std::chrono::microseconds(800));
  for (std::size_t i = 3; i < delays.size(); ++i) {
    EXPECT_EQ(delays[i], std::chrono::microseconds(1000)) << "attempt " << i;
  }
}

TEST(WithRetry, HighAttemptCountsNeverOverflowTheDelay) {
  // 200us * 10^200 overflows any integer type; the float-then-clamp
  // schedule must pin every delay to the cap instead of wrapping.
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.multiplier = 10.0;
  policy.max_delay = std::chrono::microseconds(750);
  const auto delays = delays_of(policy);
  ASSERT_EQ(delays.size(), 199u);
  for (const auto d : delays) {
    EXPECT_GT(d.count(), 0);
    EXPECT_LE(d, std::chrono::microseconds(750));
  }
}

TEST(WithRetry, JitterIsBoundedAndDeterministicUnderAFixedSeed) {
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.jitter = 0.5;
  policy.jitter_seed = 42;
  policy.max_delay = std::chrono::microseconds(5000);
  const auto first = delays_of(policy);
  const auto second = delays_of(policy);
  // Same seed => bit-identical schedule (chaos runs replay from a log).
  EXPECT_EQ(first, second);

  ASSERT_EQ(first.size(), 11u);
  bool any_jittered = false;
  for (std::size_t i = 0; i < first.size(); ++i) {
    const double ideal = std::min(200.0 * std::pow(2.0, static_cast<double>(i)),
                                  5000.0);
    EXPECT_GE(first[i].count(), static_cast<long>(ideal * 0.5) - 1) << i;
    EXPECT_LE(first[i], std::chrono::microseconds(5000)) << i;
    any_jittered |= first[i].count() != static_cast<long>(ideal);
  }
  EXPECT_TRUE(any_jittered) << "jitter had no effect on any delay";

  policy.jitter_seed = 43;
  EXPECT_NE(delays_of(policy), first) << "different seed, same schedule";
}

class FaultVolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxfault_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    const auto data = random_bytes(120000, 11);
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions fast_opts() {
    StoreOptions opts;
    opts.io_payload = 4096;
    opts.retry = fast_retry();
    return opts;
  }

  PosixIoBackend posix_;
  fs::path dir_;
  fs::path input_;
};

TEST_F(FaultVolumeTest, TransientWriteFaultsAreRetriedAway) {
  FaultInjectingBackend io(posix_);
  io.inject({Op::kWrite, "node_002", IoCode::kIoError, /*times=*/3, 0});
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  EXPECT_GE(io.faults_fired(), 3u);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
}

TEST_F(FaultVolumeTest, TransientReadFaultsDuringDecodeAreRetriedAway) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  io.inject({Op::kRead, "node_001", IoCode::kIoError, /*times=*/2, 0});
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_GE(io.faults_fired(), 2u);
}

TEST_F(FaultVolumeTest, ShortReadsAreRetriedAway) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  io.inject({Op::kRead, "node_000", IoCode::kShortRead, /*times=*/1,
             /*short_bytes=*/17});
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(io.faults_fired(), 1u);
}

TEST_F(FaultVolumeTest, EnospcDuringEncodeLeavesNoManifest) {
  FaultInjectingBackend io(posix_);
  io.inject({Op::kWrite, "node_003", IoCode::kNoSpace, /*times=*/-1, 0});
  try {
    VolumeStore::encode_file(io, input_, dir_ / "vol", rs_params(), 1024,
                             std::nullopt, fast_opts());
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), IoCode::kNoSpace);
  }
  // The manifest is the commit point: a failed encode must not have one,
  // and the aborted chunk files must not linger under their final names.
  EXPECT_FALSE(fs::exists(dir_ / "vol" / kManifestFile));
  EXPECT_FALSE(fs::exists(dir_ / "vol" / node_file_name(kVolumeV2, 3)));
  EXPECT_THROW(VolumeStore(io, dir_ / "vol"), Error);
}

TEST_F(FaultVolumeTest, PermanentManifestWriteFailureIsAtomic) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  Manifest m = vol.manifest();
  m.extra["attempt"] = "2";
  io.inject({Op::kWrite, "manifest", IoCode::kNoSpace, /*times=*/-1, 0});
  const IoStatus st = m.save(io, dir_ / "vol", fast_retry());
  EXPECT_EQ(st.code, IoCode::kNoSpace);
  io.clear_faults();
  // The original manifest must be intact and carry no trace of attempt 2.
  const Manifest back = Manifest::load(io, dir_ / "vol");
  EXPECT_EQ(back.extra.count("attempt"), 0u);
  EXPECT_EQ(back.file_crc, vol.manifest().file_crc);
  EXPECT_FALSE(fs::exists(dir_ / "vol" / (std::string(kManifestFile) + kTmpSuffix)));
}

TEST_F(FaultVolumeTest, PermanentRepairWriteFailureLeavesVolumeUsable) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  ASSERT_TRUE(fs::remove(vol.node_path(2)));

  ScrubService service(vol);
  const ScrubReport report = service.scrub();
  ASSERT_FALSE(report.clean());

  io.inject({Op::kWrite, "node_002", IoCode::kIoError, /*times=*/-1, 0});
  EXPECT_THROW(service.repair_damage(report), StoreError);
  io.clear_faults();

  // The failed repair wrote nothing under final names; a second attempt on
  // a healthy device succeeds end to end.
  EXPECT_FALSE(fs::exists(vol.node_path(2)));
  const RepairOutcome outcome = service.repair();
  EXPECT_TRUE(outcome.fully_recovered);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
}

TEST_F(FaultVolumeTest, ScrubSurvivesUnreadableNode) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  // Node 1 permanently unreadable (dying disk): scrub must queue it for
  // repair instead of aborting, and repair must rebuild it from the rest.
  io.inject({Op::kOpen, "node_001", IoCode::kIoError, /*times=*/-1, 0});
  ScrubService service(vol);
  const ScrubReport report = service.scrub();
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].node, 1);
  EXPECT_TRUE(report.damaged[0].missing);

  io.clear_faults();
  const RepairOutcome outcome = service.repair_damage(report);
  EXPECT_TRUE(outcome.fully_recovered);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
}

// ---------------------------------------------------------------------------
// Seeded chaos mode: one seed drives every fault schedule
// ---------------------------------------------------------------------------

TEST_F(FaultVolumeTest, ChaosScheduleReplaysBitIdenticallyFromItsSeed) {
  // A single-worker pool makes the I/O op sequence (and therefore the
  // PRNG draw sequence) a pure function of the workload, so the whole
  // chaos schedule replays from the seed alone.
  ThreadPool serial(1);

  const auto run = [&](std::uint64_t seed) -> std::uint64_t {
    FaultInjectingBackend io(posix_);
    StoreOptions opts = fast_opts();
    opts.pool = &serial;
    opts.retry.max_attempts = 6;  // out-retry the injected fault rate
    fs::remove_all(dir_ / "vol");
    VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                               rs_params(), 1024, std::nullopt,
                                               opts);
    FaultInjectingBackend::ChaosOptions chaos;
    chaos.read_fault_rate = 0.2;
    io.enable_chaos(seed, chaos);
    EXPECT_EQ(io.chaos_seed(), seed);
    const auto result = vol.decode_file(dir_ / "out.bin");
    EXPECT_TRUE(result.crc_ok);
    io.disable_chaos();
    return io.faults_fired();
  };

  const std::uint64_t first = run(1234);
  EXPECT_GT(first, 0u) << "chaos at 20% fired nothing - knob inert?";
  EXPECT_EQ(run(1234), first) << "same seed must replay the same schedule";
  EXPECT_EQ(run(1234), first) << "replay must be stable across reruns";
}

TEST_F(FaultVolumeTest, ChaosWriteFaultsAreRetriedAwayDuringEncode) {
  ThreadPool serial(1);
  FaultInjectingBackend io(posix_);
  StoreOptions opts = fast_opts();
  opts.pool = &serial;
  opts.retry.max_attempts = 8;
  FaultInjectingBackend::ChaosOptions chaos;
  chaos.write_fault_rate = 0.1;
  io.enable_chaos(7, chaos);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             opts);
  io.disable_chaos();
  EXPECT_GT(io.faults_fired(), 0u);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_TRUE(ScrubService(vol).scrub().clean());
}

}  // namespace
}  // namespace approx::store
