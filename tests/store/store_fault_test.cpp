// Fault injection: retry/backoff behaviour and failure atomicity of the
// store under transient and permanent I/O errors.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

using Op = FaultInjectingBackend::Op;
using Fault = FaultInjectingBackend::Fault;

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

// Retry policy with a recording no-op sleeper so tests never really sleep.
RetryPolicy fast_retry(std::vector<std::chrono::microseconds>* delays = nullptr) {
  RetryPolicy p;
  p.base_delay = std::chrono::microseconds(200);
  p.sleeper = [delays](std::chrono::microseconds d) {
    if (delays != nullptr) delays->push_back(d);
  };
  return p;
}

TEST(WithRetry, TransientFailureRetriedWithExponentialBackoff) {
  std::vector<std::chrono::microseconds> delays;
  const RetryPolicy policy = fast_retry(&delays);
  int calls = 0;
  const IoStatus st = with_retry(policy, [&]() -> IoStatus {
    if (++calls <= 2) return IoStatus::failure(IoCode::kIoError, "transient");
    return IoStatus::success();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], std::chrono::microseconds(200));
  EXPECT_EQ(delays[1], std::chrono::microseconds(400));
}

TEST(WithRetry, PermanentFailureExhaustsAttempts) {
  const RetryPolicy policy = fast_retry();
  int calls = 0;
  const IoStatus st = with_retry(policy, [&]() -> IoStatus {
    ++calls;
    return IoStatus::failure(IoCode::kIoError, "dead device");
  });
  EXPECT_EQ(st.code, IoCode::kIoError);
  EXPECT_EQ(calls, policy.max_attempts);
}

TEST(WithRetry, NonRetryableCodesFailImmediately) {
  for (const IoCode code : {IoCode::kNotFound, IoCode::kNoSpace}) {
    int calls = 0;
    const IoStatus st = with_retry(fast_retry(), [&]() -> IoStatus {
      ++calls;
      return IoStatus::failure(code, "final");
    });
    EXPECT_EQ(st.code, code);
    EXPECT_EQ(calls, 1);
  }
}

class FaultVolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxfault_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    const auto data = random_bytes(120000, 11);
    input_ = dir_ / "input.bin";
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  }
  void TearDown() override { fs::remove_all(dir_); }

  StoreOptions fast_opts() {
    StoreOptions opts;
    opts.io_payload = 4096;
    opts.retry = fast_retry();
    return opts;
  }

  PosixIoBackend posix_;
  fs::path dir_;
  fs::path input_;
};

TEST_F(FaultVolumeTest, TransientWriteFaultsAreRetriedAway) {
  FaultInjectingBackend io(posix_);
  io.inject({Op::kWrite, "node_002", IoCode::kIoError, /*times=*/3, 0});
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  EXPECT_GE(io.faults_fired(), 3u);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
}

TEST_F(FaultVolumeTest, TransientReadFaultsDuringDecodeAreRetriedAway) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  io.inject({Op::kRead, "node_001", IoCode::kIoError, /*times=*/2, 0});
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_GE(io.faults_fired(), 2u);
}

TEST_F(FaultVolumeTest, ShortReadsAreRetriedAway) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  io.inject({Op::kRead, "node_000", IoCode::kShortRead, /*times=*/1,
             /*short_bytes=*/17});
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(io.faults_fired(), 1u);
}

TEST_F(FaultVolumeTest, EnospcDuringEncodeLeavesNoManifest) {
  FaultInjectingBackend io(posix_);
  io.inject({Op::kWrite, "node_003", IoCode::kNoSpace, /*times=*/-1, 0});
  try {
    VolumeStore::encode_file(io, input_, dir_ / "vol", rs_params(), 1024,
                             std::nullopt, fast_opts());
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), IoCode::kNoSpace);
  }
  // The manifest is the commit point: a failed encode must not have one,
  // and the aborted chunk files must not linger under their final names.
  EXPECT_FALSE(fs::exists(dir_ / "vol" / kManifestFile));
  EXPECT_FALSE(fs::exists(dir_ / "vol" / node_file_name(kVolumeV2, 3)));
  EXPECT_THROW(VolumeStore(io, dir_ / "vol"), Error);
}

TEST_F(FaultVolumeTest, PermanentManifestWriteFailureIsAtomic) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  Manifest m = vol.manifest();
  m.extra["attempt"] = "2";
  io.inject({Op::kWrite, "manifest", IoCode::kNoSpace, /*times=*/-1, 0});
  const IoStatus st = m.save(io, dir_ / "vol", fast_retry());
  EXPECT_EQ(st.code, IoCode::kNoSpace);
  io.clear_faults();
  // The original manifest must be intact and carry no trace of attempt 2.
  const Manifest back = Manifest::load(io, dir_ / "vol");
  EXPECT_EQ(back.extra.count("attempt"), 0u);
  EXPECT_EQ(back.file_crc, vol.manifest().file_crc);
  EXPECT_FALSE(fs::exists(dir_ / "vol" / (std::string(kManifestFile) + kTmpSuffix)));
}

TEST_F(FaultVolumeTest, PermanentRepairWriteFailureLeavesVolumeUsable) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  ASSERT_TRUE(fs::remove(vol.node_path(2)));

  ScrubService service(vol);
  const ScrubReport report = service.scrub();
  ASSERT_FALSE(report.clean());

  io.inject({Op::kWrite, "node_002", IoCode::kIoError, /*times=*/-1, 0});
  EXPECT_THROW(service.repair_damage(report), StoreError);
  io.clear_faults();

  // The failed repair wrote nothing under final names; a second attempt on
  // a healthy device succeeds end to end.
  EXPECT_FALSE(fs::exists(vol.node_path(2)));
  const RepairOutcome outcome = service.repair();
  EXPECT_TRUE(outcome.fully_recovered);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
}

TEST_F(FaultVolumeTest, ScrubSurvivesUnreadableNode) {
  FaultInjectingBackend io(posix_);
  VolumeStore vol = VolumeStore::encode_file(io, input_, dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             fast_opts());
  // Node 1 permanently unreadable (dying disk): scrub must queue it for
  // repair instead of aborting, and repair must rebuild it from the rest.
  io.inject({Op::kOpen, "node_001", IoCode::kIoError, /*times=*/-1, 0});
  ScrubService service(vol);
  const ScrubReport report = service.scrub();
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_EQ(report.damaged[0].node, 1);
  EXPECT_TRUE(report.damaged[0].missing);

  io.clear_faults();
  const RepairOutcome outcome = service.repair_damage(report);
  EXPECT_TRUE(outcome.fully_recovered);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
}

}  // namespace
}  // namespace approx::store
