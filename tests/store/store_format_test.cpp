// On-disk format primitives: superblock serialization, block seals, family
// wire codes and the streaming CRC combiner.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "common/crc32.h"
#include "store/format.h"

namespace approx::store {
namespace {

core::ApprParams test_params() {
  return {codes::Family::LRC, 6, 1, 2, 4, core::Structure::Uneven};
}

TEST(Superblock, SerializeDeserializeRoundtrip) {
  Superblock sb;
  sb.params = test_params();
  sb.block_size = 8192;
  sb.io_payload = 32 * 1024;

  const auto bytes = sb.serialize();
  ASSERT_EQ(bytes.size(), kSuperblockBytes);
  const Superblock back = Superblock::deserialize(bytes);

  EXPECT_EQ(back.params.family, sb.params.family);
  EXPECT_EQ(back.params.k, sb.params.k);
  EXPECT_EQ(back.params.r, sb.params.r);
  EXPECT_EQ(back.params.g, sb.params.g);
  EXPECT_EQ(back.params.h, sb.params.h);
  EXPECT_EQ(back.params.structure, sb.params.structure);
  EXPECT_EQ(back.block_size, sb.block_size);
  EXPECT_EQ(back.io_payload, sb.io_payload);
}

TEST(Superblock, RejectsBadMagic) {
  Superblock sb;
  sb.params = test_params();
  auto bytes = sb.serialize();
  bytes[0] ^= 0xff;
  EXPECT_THROW(Superblock::deserialize(bytes), Error);
}

TEST(Superblock, RejectsFlippedBitViaCrc) {
  Superblock sb;
  sb.params = test_params();
  auto bytes = sb.serialize();
  bytes[17] ^= 0x01;  // inside the k field
  EXPECT_THROW(Superblock::deserialize(bytes), Error);
}

TEST(Superblock, RejectsTruncatedBuffer) {
  Superblock sb;
  sb.params = test_params();
  const auto bytes = sb.serialize();
  EXPECT_THROW(Superblock::deserialize(
                   std::span<const std::uint8_t>(bytes.data(), 32)),
               Error);
}

TEST(Format, BlockSealDependsOnIndex) {
  // A stale block copied to a different offset must fail its seal check.
  EXPECT_NE(block_seal(0), block_seal(1));
  EXPECT_NE(block_seal(1), block_seal(2));
  EXPECT_NE(block_seal(0), block_seal(1ull << 20));
  EXPECT_EQ(block_seal(7), block_seal(7));
}

TEST(Format, FamilyWireCodesRoundtrip) {
  for (const auto f : {codes::Family::RS, codes::Family::LRC,
                       codes::Family::STAR, codes::Family::TIP,
                       codes::Family::CRS}) {
    EXPECT_EQ(family_from_wire(family_wire_code(f)), f);
  }
  EXPECT_THROW(family_from_wire(0), Error);
  EXPECT_THROW(family_from_wire(99), Error);
}

TEST(Format, FamilyFlagsParse) {
  EXPECT_EQ(family_from_flag("rs"), codes::Family::RS);
  EXPECT_EQ(family_from_flag("crs"), codes::Family::CRS);
  EXPECT_THROW(family_from_flag("raid6"), Error);
}

TEST(Format, NodeFileNamesPerVersion) {
  EXPECT_EQ(node_file_name(kVolumeV1, 3), "node_003.bin");
  EXPECT_EQ(node_file_name(kVolumeV2, 3), "node_003.acb");
  EXPECT_EQ(node_file_name(kVolumeV2, 120), "node_120.acb");
}

TEST(Crc32Combine, MatchesSequentialCrc) {
  std::mt19937 rng(42);
  for (const std::size_t len_a : {std::size_t{0}, std::size_t{1},
                                  std::size_t{63}, std::size_t{4096}}) {
    for (const std::size_t len_b : {std::size_t{0}, std::size_t{1},
                                    std::size_t{511}, std::size_t{70000}}) {
      std::vector<std::uint8_t> all(len_a + len_b);
      for (auto& b : all) b = static_cast<std::uint8_t>(rng());
      const std::span<const std::uint8_t> a(all.data(), len_a);
      const std::span<const std::uint8_t> b(all.data() + len_a, len_b);
      EXPECT_EQ(crc32_combine(crc32(a), crc32(b), len_b), crc32(all))
          << "len_a=" << len_a << " len_b=" << len_b;
    }
  }
}

TEST(Crc32Combine, ChainsAcrossManyPieces) {
  // The streaming encoder stitches per-region CRCs; emulate three pieces.
  std::vector<std::uint8_t> data(10000);
  std::mt19937 rng(7);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  const std::span<const std::uint8_t> s(data);
  const auto p1 = s.subspan(0, 1234);
  const auto p2 = s.subspan(1234, 4321);
  const auto p3 = s.subspan(1234 + 4321);
  std::uint32_t c = crc32(p1);
  c = crc32_combine(c, crc32(p2), p2.size());
  c = crc32_combine(c, crc32(p3), p3.size());
  EXPECT_EQ(c, crc32(s));
}

}  // namespace
}  // namespace approx::store
