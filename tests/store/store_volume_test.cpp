// VolumeStore end-to-end: streaming encode/decode roundtrips, the
// scrub -> repair -> decode corruption lifecycle, v1 read compatibility and
// manifest robustness.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/crc32.h"
#include "store/scrubber.h"
#include "store/store.h"

namespace fs = std::filesystem;

namespace approx::store {
namespace {

core::ApprParams rs_params() {
  return {codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
}

std::vector<std::uint8_t> random_bytes(std::size_t n, std::uint32_t seed) {
  std::vector<std::uint8_t> data(n);
  std::mt19937 rng(seed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  return data;
}

void write_whole_file(const fs::path& path, std::span<const std::uint8_t> data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

std::vector<std::uint8_t> read_whole_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

class VolumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("approxstore_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path input(const std::vector<std::uint8_t>& data) {
    const fs::path p = dir_ / "input.bin";
    write_whole_file(p, data);
    return p;
  }

  PosixIoBackend io_;
  fs::path dir_;
};

TEST_F(VolumeTest, EncodeDecodeRoundtripIsByteIdentical) {
  const auto data = random_bytes(300000, 1);
  StoreOptions opts;
  opts.io_payload = 4096;  // several blocks per chunk file
  VolumeStore vol = VolumeStore::encode_file(io_, input(data), dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             opts);
  EXPECT_EQ(vol.manifest().file_size, data.size());
  EXPECT_EQ(vol.manifest().file_crc, crc32(data));
  EXPECT_GT(vol.manifest().chunks, 1u);  // actually streamed

  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(result.bytes, data.size());
  EXPECT_EQ(read_whole_file(dir_ / "out.bin"), data);
}

TEST_F(VolumeTest, ReopenedVolumeDecodes) {
  const auto data = random_bytes(50000, 2);
  VolumeStore::encode_file(io_, input(data), dir_ / "vol", rs_params(), 512,
                           std::nullopt);
  VolumeStore vol(io_, dir_ / "vol");
  EXPECT_EQ(vol.version(), kVolumeV2);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "out.bin"), data);
}

TEST_F(VolumeTest, SplitControlsImportantPrefix) {
  const auto data = random_bytes(40000, 3);
  VolumeStore vol = VolumeStore::encode_file(io_, input(data), dir_ / "vol",
                                             rs_params(), 512,
                                             std::uint64_t{10000});
  EXPECT_EQ(vol.manifest().important_len, 10000u);
}

// The e2e corruption lifecycle required by the issue: flip bits inside one
// chunk-file block AND delete a second chunk file entirely; scrub must flag
// both, repair must restore them, and decode must match byte-for-byte.
TEST_F(VolumeTest, ScrubFlagsAndRepairFixesCorruptionAndLoss) {
  const auto data = random_bytes(400000, 4);
  StoreOptions opts;
  opts.io_payload = 4096;
  VolumeStore vol = VolumeStore::encode_file(io_, input(data), dir_ / "vol",
                                             rs_params(), 1024, std::nullopt,
                                             opts);

  // Flip bits in the middle of block 2's payload of node 3.
  const fs::path victim = vol.node_path(3);
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f);
    const std::size_t phys_block = opts.io_payload + kBlockFooterBytes;
    f.seekp(static_cast<std::streamoff>(2 * phys_block + 100));
    char garbage[4] = {'\x5a', '\x5a', '\x5a', '\x5a'};
    f.write(garbage, sizeof garbage);
  }
  // And delete node 5 outright.
  ASSERT_TRUE(fs::remove(vol.node_path(5)));

  ScrubService service(vol);
  const ScrubReport report = service.scrub();
  ASSERT_EQ(report.damaged.size(), 2u);
  EXPECT_EQ(report.damaged[0].node, 3);
  EXPECT_FALSE(report.damaged[0].missing);
  ASSERT_EQ(report.damaged[0].bad_blocks.size(), 1u);
  EXPECT_EQ(report.damaged[0].bad_blocks[0], 2u);
  EXPECT_EQ(report.damaged[1].node, 5);
  EXPECT_TRUE(report.damaged[1].missing);
  EXPECT_EQ(report.missing_nodes, 1u);
  EXPECT_EQ(report.corrupt_blocks, 1u);

  const RepairOutcome outcome = service.repair_damage(report);
  EXPECT_TRUE(outcome.attempted);
  EXPECT_TRUE(outcome.fully_recovered);
  EXPECT_TRUE(outcome.all_important_recovered);

  EXPECT_TRUE(service.scrub().clean());
  EXPECT_TRUE(vol.parity_scrub().clean());

  const auto result = vol.decode_file(dir_ / "restored.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "restored.bin"), data);
}

TEST_F(VolumeTest, StrictDecodeWithMissingNodeThrowsNotFound) {
  const auto data = random_bytes(20000, 5);
  VolumeStore vol = VolumeStore::encode_file(io_, input(data), dir_ / "vol",
                                             rs_params(), 512, std::nullopt);
  ASSERT_TRUE(fs::remove(vol.node_path(0)));
  try {
    VolumeStore::DecodeOptions strict;
    strict.allow_degraded = false;
    vol.decode_file(dir_ / "out.bin", strict);
    FAIL() << "expected StoreError";
  } catch (const StoreError& e) {
    EXPECT_EQ(e.code(), IoCode::kNotFound);
  }
}

TEST_F(VolumeTest, DegradedDecodeWithMissingNodeIsExact) {
  const auto data = random_bytes(20000, 5);
  VolumeStore vol = VolumeStore::encode_file(io_, input(data), dir_ / "vol",
                                             rs_params(), 512, std::nullopt);
  ASSERT_TRUE(fs::remove(vol.node_path(0)));

  // One lost node is within the local tolerance: the default decode
  // reconstructs it on the fly and the output is byte-identical.
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_TRUE(result.important_ok);
  EXPECT_EQ(result.unrecoverable_bytes, 0u);
  ASSERT_EQ(result.degraded_nodes.size(), 1u);
  EXPECT_EQ(result.degraded_nodes[0], 0);
  EXPECT_EQ(read_whole_file(dir_ / "out.bin"), data);
  // The missing node was queued for background repair.
  EXPECT_EQ(vol.pending_repairs(), 1u);
}

TEST_F(VolumeTest, RepairBeyondToleranceReportsApproximateLoss) {
  const auto data = random_bytes(200000, 6);
  VolumeStore vol = VolumeStore::encode_file(io_, input(data), dir_ / "vol",
                                             rs_params(), 1024, std::nullopt);
  // Two whole nodes from the same local stripe: beyond what the code can
  // restore losslessly, but the important prefix must survive.
  ASSERT_TRUE(fs::remove(vol.node_path(0)));
  ASSERT_TRUE(fs::remove(vol.node_path(1)));

  ScrubService service(vol);
  const RepairOutcome outcome = service.repair();
  EXPECT_TRUE(outcome.attempted);
  EXPECT_TRUE(outcome.all_important_recovered);
  EXPECT_FALSE(outcome.fully_recovered);
  EXPECT_GT(outcome.unimportant_bytes_lost, 0u);
  EXPECT_TRUE(service.scrub().clean());  // normalized parity scrubs clean

  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_FALSE(result.crc_ok);  // unimportant tail was zero-filled
  const auto out = read_whole_file(dir_ / "out.bin");
  ASSERT_EQ(out.size(), data.size());
  const std::size_t imp = vol.manifest().important_len;
  EXPECT_TRUE(std::equal(out.begin(),
                         out.begin() + static_cast<std::ptrdiff_t>(imp),
                         data.begin()));
}

// ---------------------------------------------------------------------------
// v1 compatibility
// ---------------------------------------------------------------------------

// Build a legacy volume by hand: raw node_NNN.bin streams + v1 manifest.
void write_v1_volume(const fs::path& dir, const std::vector<std::uint8_t>& data,
                     const core::ApprParams& params, std::size_t block) {
  core::ApproximateCode code(params, block);
  const std::size_t important_len = data.size() / static_cast<std::size_t>(params.h);
  const std::size_t unimportant_len = data.size() - important_len;
  const std::size_t chunks = std::max<std::size_t>(
      1, std::max((important_len + code.important_capacity() - 1) /
                      code.important_capacity(),
                  (unimportant_len + code.unimportant_capacity() - 1) /
                      code.unimportant_capacity()));

  fs::create_directories(dir);
  std::vector<std::ofstream> nodes;
  for (int n = 0; n < code.total_nodes(); ++n) {
    nodes.emplace_back(dir / node_file_name(kVolumeV1, n),
                       std::ios::binary | std::ios::trunc);
  }
  for (std::size_t c = 0; c < chunks; ++c) {
    std::vector<std::uint8_t> imp(code.important_capacity(), 0);
    std::vector<std::uint8_t> unimp(code.unimportant_capacity(), 0);
    const std::size_t ioff = c * imp.size();
    if (ioff < important_len) {
      std::memcpy(imp.data(), data.data() + ioff,
                  std::min(imp.size(), important_len - ioff));
    }
    const std::size_t uoff = c * unimp.size();
    if (uoff < unimportant_len) {
      std::memcpy(unimp.data(), data.data() + important_len + uoff,
                  std::min(unimp.size(), unimportant_len - uoff));
    }
    StripeBuffers buffers(code.total_nodes(), code.node_bytes());
    auto spans = buffers.spans();
    code.scatter(imp, unimp, spans);
    code.encode(spans);
    for (int n = 0; n < code.total_nodes(); ++n) {
      const auto s = buffers.node(n);
      nodes[static_cast<std::size_t>(n)].write(
          reinterpret_cast<const char*>(s.data()),
          static_cast<std::streamsize>(s.size()));
    }
  }
  std::ofstream m(dir / kManifestFile, std::ios::trunc);
  m << "format=approxcode-volume-v1\nfamily=rs\n"
    << "k=" << params.k << "\nr=" << params.r << "\ng=" << params.g
    << "\nh=" << params.h << "\nstructure=even\n"
    << "block=" << block << "\nfile_size=" << data.size() << "\n"
    << "important_len=" << important_len << "\nchunks=" << chunks << "\n"
    << "file_crc32=" << crc32(data) << "\n";
}

TEST_F(VolumeTest, V1VolumeDecodesAndRepairs) {
  const auto data = random_bytes(150000, 7);
  const fs::path vdir = dir_ / "v1vol";
  write_v1_volume(vdir, data, rs_params(), 1024);

  VolumeStore vol(io_, vdir);
  EXPECT_EQ(vol.version(), kVolumeV1);
  const auto result = vol.decode_file(dir_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "out.bin"), data);

  // Scrub on v1 has no per-block integrity data but still detects loss.
  ScrubService service(vol);
  ScrubReport report = service.scrub();
  EXPECT_TRUE(report.clean());
  EXPECT_FALSE(report.integrity_checked);

  ASSERT_TRUE(fs::remove(vol.node_path(2)));
  report = service.scrub();
  ASSERT_EQ(report.damaged.size(), 1u);
  EXPECT_TRUE(report.damaged[0].missing);
  const RepairOutcome outcome = service.repair_damage(report);
  EXPECT_TRUE(outcome.fully_recovered);
  EXPECT_TRUE(fs::exists(vol.node_path(2)));  // rebuilt as raw v1 stream
  const auto again = vol.decode_file(dir_ / "out2.bin");
  EXPECT_TRUE(again.crc_ok);
  EXPECT_EQ(read_whole_file(dir_ / "out2.bin"), data);
}

// ---------------------------------------------------------------------------
// Manifest robustness
// ---------------------------------------------------------------------------

class ManifestTest : public VolumeTest {
 protected:
  // Write a syntactically valid v2 manifest, then corrupt one line.
  void write_manifest_with(const std::string& key, const std::string& value) {
    const auto data = random_bytes(5000, 8);
    VolumeStore::encode_file(io_, input(data), dir_ / "vol", rs_params(), 512,
                             std::nullopt);
    const fs::path mpath = dir_ / "vol" / kManifestFile;
    std::ifstream in(mpath);
    std::string line, out;
    while (std::getline(in, line)) {
      if (line.rfind(key + "=", 0) == 0) {
        out += key + "=" + value + "\n";
      } else {
        out += line + "\n";
      }
    }
    in.close();
    std::ofstream o(mpath, std::ios::trunc);
    o << out;
  }

  void expect_corrupt(const std::string& key_in_message) {
    try {
      Manifest::load(io_, dir_ / "vol");
      FAIL() << "expected corrupt-manifest error for " << key_in_message;
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("corrupt manifest"),
                std::string::npos)
          << e.what();
      EXPECT_NE(std::string(e.what()).find(key_in_message), std::string::npos)
          << e.what();
    }
  }
};

TEST_F(ManifestTest, NonNumericFieldNamesKey) {
  write_manifest_with("k", "banana");
  expect_corrupt("k");
}

TEST_F(ManifestTest, TrailingGarbageNamesKey) {
  write_manifest_with("file_size", "123x");
  expect_corrupt("file_size");
}

TEST_F(ManifestTest, OverflowNamesKey) {
  write_manifest_with("chunks", "99999999999999999999999999");
  expect_corrupt("chunks");
}

TEST_F(ManifestTest, NegativeNumberNamesKey) {
  write_manifest_with("h", "-4");
  expect_corrupt("h");
}

TEST_F(ManifestTest, MissingKeyIsCorrupt) {
  const auto data = random_bytes(5000, 9);
  VolumeStore::encode_file(io_, input(data), dir_ / "vol", rs_params(), 512,
                           std::nullopt);
  const fs::path mpath = dir_ / "vol" / kManifestFile;
  std::ifstream in(mpath);
  std::string line, out;
  while (std::getline(in, line)) {
    if (line.rfind("file_crc32=", 0) != 0) out += line + "\n";
  }
  in.close();
  std::ofstream(mpath, std::ios::trunc) << out;
  expect_corrupt("file_crc32");
}

TEST_F(ManifestTest, UnknownKeysSurviveRoundtrip) {
  const auto data = random_bytes(5000, 10);
  VolumeStore::encode_file(io_, input(data), dir_ / "vol", rs_params(), 512,
                           std::nullopt);
  Manifest m = Manifest::load(io_, dir_ / "vol");
  m.extra["video.frame_count"] = "240";
  ASSERT_TRUE(m.save(io_, dir_ / "vol").ok());
  const Manifest back = Manifest::load(io_, dir_ / "vol");
  ASSERT_EQ(back.extra.count("video.frame_count"), 1u);
  EXPECT_EQ(back.extra.at("video.frame_count"), "240");
}

TEST_F(ManifestTest, MissingManifestThrows) {
  fs::create_directories(dir_ / "empty");
  EXPECT_THROW(Manifest::load(io_, dir_ / "empty"), Error);
}

}  // namespace
}  // namespace approx::store
