// Loopback chaos suite: the serving layer under seeded random
// request/reply drops, delays, payload corruption, and partitions.  The
// invariants are the store's, lifted to the cluster: chaos may slow a
// request or fail it EXPLICITLY, but data that reads back clean must be
// byte-identical — and any logged seed replays its fault schedule exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/prng.h"
#include "net/loopback.h"
#include "serving/client.h"
#include "serving/coordinator.h"
#include "serving/daemon.h"

namespace approx::serving {
namespace {

namespace fs = std::filesystem;

constexpr int kDaemons = 4;

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = fs::temp_directory_path() /
            ("approx_chaos_test_" + std::string(::testing::UnitTest::GetInstance()
                                                    ->current_test_info()
                                                    ->name()));
    fs::remove_all(work_);
    fs::create_directories(work_);

    coordinator_ = std::make_unique<Coordinator>(transport_, "coord", io_,
                                                 work_ / "meta");
    ASSERT_TRUE(coordinator_->start().ok());
    for (int n = 0; n < kDaemons; ++n) {
      DaemonOptions opts;
      opts.name = "n" + std::to_string(n);
      opts.rack = static_cast<std::uint32_t>(n);
      daemons_.push_back(std::make_unique<StorageDaemon>(
          transport_, opts.name, io_, work_ / ("d" + std::to_string(n)),
          opts));
      ASSERT_TRUE(daemons_.back()->start().ok());
      ASSERT_TRUE(daemons_.back()->join("coord").ok());
    }

    options_.params =
        core::ApprParams{codes::Family::RS, 2, 1, 1, 2, core::Structure::Even};
    options_.block = 1024;
    options_.rpc.retry.base_delay = std::chrono::microseconds(1);
    options_.rpc.retry.max_delay = std::chrono::microseconds(10);
    client_.emplace(transport_, "coord", options_);

    input_ = work_ / "input.bin";
    Rng rng(0xBADCAB1E);
    blob_.resize(96 * 1024 + 13);
    for (auto& b : blob_) b = static_cast<std::uint8_t>(rng());
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob_.data()),
              static_cast<std::streamsize>(blob_.size()));
  }

  void TearDown() override {
    net::LoopbackTransport::set_local_endpoint("client");
    client_.reset();
    daemons_.clear();
    coordinator_.reset();
    fs::remove_all(work_);
  }

  fs::path work_;
  net::LoopbackTransport transport_;
  store::PosixIoBackend io_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<StorageDaemon>> daemons_;
  ClientOptions options_;
  std::optional<ServingClient> client_;
  fs::path input_;
  std::vector<std::uint8_t> blob_;
};

TEST_F(ChaosTest, SeededScheduleReplaysAcrossTheFullStack) {
  client_->put(input_, "vol");

  // scrub issues its RPCs in a fixed serial order, so with one seed the
  // chaos verdicts land on the same calls every run: same damage verdict,
  // same number of transport deliveries.
  net::LoopbackTransport::ChaosOptions chaos;
  chaos.request_drop_rate = 0.10;
  chaos.reply_drop_rate = 0.10;
  chaos.delay_rate = 0.10;
  chaos.delay_us = 50'000;  // simulated, well under the rpc timeout
  auto run = [&](std::uint64_t seed) {
    const std::uint64_t before = transport_.delivered();
    transport_.enable_chaos(seed, chaos);
    const RemoteScrubResult r = client_->scrub("vol");
    transport_.disable_chaos();
    return std::make_pair(r.damaged_nodes, transport_.delivered() - before);
  };

  const auto first = run(1234);
  const auto second = run(1234);
  EXPECT_EQ(first.first, second.first)
      << "same seed must reproduce the same scrub verdict";
  EXPECT_EQ(first.second, second.second)
      << "same seed must reproduce the same delivery count";
}

TEST_F(ChaosTest, NoSilentCorruptionUnderFullChaos) {
  client_->put(input_, "vol");

  net::LoopbackTransport::ChaosOptions chaos;
  chaos.request_drop_rate = 0.05;
  chaos.reply_drop_rate = 0.05;
  chaos.delay_rate = 0.05;
  chaos.delay_us = 10'000;
  chaos.corrupt_rate = 0.05;

  int clean_reads = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    transport_.enable_chaos(seed, chaos);
    const fs::path out = work_ / ("out_" + std::to_string(seed) + ".bin");
    try {
      const auto result = client_->get("vol", out);
      if (result.crc_ok) {
        ++clean_reads;
        EXPECT_EQ(slurp(out), blob_)
            << "seed " << seed << ": crc_ok read returned different bytes";
      }
    } catch (const std::exception&) {
      // Explicit failure is an allowed chaos outcome; silence is not.
    }
    transport_.disable_chaos();
  }
  // Retries + degraded fallback should absorb 5% fault rates most runs.
  EXPECT_GT(clean_reads, 0) << "chaos killed every read; rates too hot";

  // And with chaos off the volume is untouched.
  const auto result = client_->get("vol", work_ / "final.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(slurp(work_ / "final.bin"), blob_);
}

TEST_F(ChaosTest, PartitionReadsDegradedThenFailsExplicitly) {
  client_->put(input_, "vol");

  // One daemon partitioned away from the client: its chunks read as
  // erasures and the stripes reconstruct.
  transport_.partition("client", "n0");
  const auto result = client_->get("vol", work_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_FALSE(result.degraded_nodes.empty());
  EXPECT_EQ(slurp(work_ / "out.bin"), blob_);

  // Partition beyond the code's tolerance: the read must fail loudly (or
  // report loss) — never fabricate bytes.
  transport_.partition("client", "n1");
  transport_.partition("client", "n2");
  bool explicit_outcome = false;
  try {
    const auto starved = client_->get("vol", work_ / "starved.bin");
    explicit_outcome = !starved.crc_ok || starved.unrecoverable_bytes > 0;
  } catch (const std::exception&) {
    explicit_outcome = true;
  }
  EXPECT_TRUE(explicit_outcome);

  transport_.heal();
  const auto healed = client_->get("vol", work_ / "healed.bin");
  EXPECT_TRUE(healed.crc_ok);
  EXPECT_EQ(slurp(work_ / "healed.bin"), blob_);
}

TEST_F(ChaosTest, ReplyDropsDuringPutAreRetrySafe) {
  // Dropped replies run the handler and lose only the acknowledgement —
  // the client retries the idempotent write and must converge on a
  // committed, byte-identical volume.
  net::LoopbackTransport::ChaosOptions chaos;
  chaos.reply_drop_rate = 0.05;
  transport_.enable_chaos(77, chaos);
  client_->put(input_, "vol");
  transport_.disable_chaos();

  const auto result = client_->get("vol", work_ / "out.bin");
  EXPECT_TRUE(result.crc_ok);
  EXPECT_TRUE(result.degraded_nodes.empty())
      << "retried writes must leave no holes";
  EXPECT_EQ(slurp(work_ / "out.bin"), blob_);
}

}  // namespace
}  // namespace approx::serving
