// End-to-end multi-node serving over the deterministic loopback transport:
// one coordinator + four storage daemons, a striped client, and the
// failure drills from ISSUE acceptance — node kill during reads and
// writes, repair restoring redundancy, coordinator restart, and the
// distributed trace stitching into one connected tree.
//
// Geometry: APPR.RS(k=2, r=1, g=1, h=2) = 7 chunk files of stripe width 3
// over 4 daemons, so any single daemon kill stays inside the code's
// tolerance while every daemon owns at least one chunk.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/prng.h"
#include "net/loopback.h"
#include "obs/span.h"
#include "serving/client.h"
#include "serving/coordinator.h"
#include "serving/daemon.h"
#include "store/format.h"

namespace approx::serving {
namespace {

namespace fs = std::filesystem;

constexpr int kDaemons = 4;

std::vector<std::uint8_t> make_blob(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint8_t> blob(n);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng());
  return blob;
}

std::vector<std::uint8_t> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = fs::temp_directory_path() /
            ("approx_cluster_test_" +
             std::to_string(
                 ::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(work_);
    fs::create_directories(work_);

    start_coordinator();
    for (int n = 0; n < kDaemons; ++n) start_daemon(n);

    options_.params =
        core::ApprParams{codes::Family::RS, 2, 1, 1, 2, core::Structure::Even};
    options_.block = 1024;
    // Keep chaos-era retries snappy: the loopback never needs backoff.
    options_.rpc.retry.base_delay = std::chrono::microseconds(1);
    options_.rpc.retry.max_delay = std::chrono::microseconds(10);
    client_.emplace(transport_, "coord", options_);

    input_ = work_ / "input.bin";
    blob_ = make_blob(200 * 1024 + 37, 0xC0FFEE);
    std::ofstream out(input_, std::ios::binary);
    out.write(reinterpret_cast<const char*>(blob_.data()),
              static_cast<std::streamsize>(blob_.size()));
  }

  void TearDown() override {
    client_.reset();
    daemons_.clear();
    coordinator_.reset();
    fs::remove_all(work_);
  }

  void start_coordinator() {
    coordinator_ = std::make_unique<Coordinator>(transport_, "coord", io_,
                                                 work_ / "meta");
    ASSERT_TRUE(coordinator_->start().ok());
  }

  void start_daemon(int n) {
    DaemonOptions opts;
    opts.name = "n" + std::to_string(n);
    opts.rack = static_cast<std::uint32_t>(n);
    auto d = std::make_unique<StorageDaemon>(
        transport_, opts.name, io_, work_ / ("d" + std::to_string(n)), opts);
    ASSERT_TRUE(d->start().ok());
    ASSERT_TRUE(d->join("coord").ok());
    if (daemons_.size() <= static_cast<std::size_t>(n)) {
      daemons_.resize(static_cast<std::size_t>(n) + 1);
    }
    daemons_[static_cast<std::size_t>(n)] = std::move(d);
  }

  // The daemon data directory that holds `fname`, or -1.
  int owner_of(const std::string& volume, const std::string& fname) {
    for (int n = 0; n < kDaemons; ++n) {
      if (fs::exists(work_ / ("d" + std::to_string(n)) / volume / fname)) {
        return n;
      }
    }
    return -1;
  }

  fs::path work_;
  net::LoopbackTransport transport_;
  store::PosixIoBackend io_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<StorageDaemon>> daemons_;
  ClientOptions options_;
  std::optional<ServingClient> client_;
  fs::path input_;
  std::vector<std::uint8_t> blob_;
};

TEST_F(ClusterTest, PutGetByteIdentical) {
  const store::Manifest m = client_->put(input_, "vol");
  EXPECT_EQ(m.file_size, blob_.size());

  const fs::path out = work_ / "out.bin";
  const auto result = client_->get("vol", out);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_TRUE(result.degraded_nodes.empty());
  EXPECT_EQ(slurp(out), blob_);
  EXPECT_EQ(client_->transport_failures(), 0u);

  // Every daemon ended up owning at least one chunk file (placement
  // spreads 7 chunks over 4 nodes).
  for (int n = 0; n < kDaemons; ++n) {
    int owned = 0;
    for (const auto& e :
         fs::directory_iterator(work_ / ("d" + std::to_string(n)) / "vol")) {
      owned += e.is_regular_file() ? 1 : 0;
    }
    EXPECT_GE(owned, 1) << "daemon " << n << " owns no chunks";
  }
}

TEST_F(ClusterTest, DegradedGetSurvivesDaemonKill) {
  client_->put(input_, "vol");
  transport_.set_down("n2", true);

  const fs::path out = work_ / "out.bin";
  const auto result = client_->get("vol", out);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_FALSE(result.degraded_nodes.empty())
      << "reads through a dead daemon must go degraded, not fail";
  EXPECT_EQ(slurp(out), blob_);
}

TEST_F(ClusterTest, RepairRestoresRedundancyAfterDiskLoss) {
  client_->put(input_, "vol");

  // Simulate a disk swap: daemon n1 keeps serving but its chunk files for
  // this volume are gone.
  fs::remove_all(work_ / "d1" / "vol");
  ASSERT_FALSE(client_->scrub("vol").clean());

  const store::RepairOutcome outcome = client_->repair("vol");
  EXPECT_TRUE(outcome.attempted);
  EXPECT_TRUE(outcome.fully_recovered);
  EXPECT_TRUE(client_->scrub("vol").clean())
      << "repair must put the rebuilt chunks back on their owner";

  // Redundancy is really back: lose a DIFFERENT daemon and read clean.
  transport_.set_down("n3", true);
  const fs::path out = work_ / "out.bin";
  const auto result = client_->get("vol", out);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(slurp(out), blob_);
}

TEST_F(ClusterTest, CoordinatorRestartReplaysStateFromDisk) {
  client_->put(input_, "vol");

  coordinator_.reset();  // crash: endpoint disappears
  {
    const fs::path out = work_ / "nope.bin";
    EXPECT_THROW(client_->get("vol", out), net::NetError);
  }

  start_coordinator();  // restart over the same meta dir; nobody re-joins

  const fs::path out = work_ / "out.bin";
  const auto result = client_->get("vol", out);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(slurp(out), blob_);

  // Membership was replayed from nodes.txt, not from fresh joins.
  EXPECT_EQ(coordinator_->nodes().size(), static_cast<std::size_t>(kDaemons));
}

TEST_F(ClusterTest, NodeKillMidStripeWriteLeavesVolumeUncommitted) {
  // Let the daemon serve a few calls of the put, then die mid-write.
  transport_.set_down_after("n0", 6);
  EXPECT_THROW(client_->put(input_, "vol"), store::StoreError);
  EXPECT_GT(client_->transport_failures(), 0u);

  // The manifest never committed: the volume does not exist for readers.
  EXPECT_THROW(client_->open("vol"), store::StoreError);

  // Bring the node back; the idempotent re-put succeeds over the partial
  // leftovers and the volume reads back byte-identical.
  transport_.set_down("n0", false);
  client_->put(input_, "vol");
  const fs::path out = work_ / "out.bin";
  const auto result = client_->get("vol", out);
  EXPECT_TRUE(result.crc_ok);
  EXPECT_EQ(slurp(out), blob_);
}

TEST_F(ClusterTest, CrossNodeDegradedReadIsOneConnectedTraceTree) {
  client_->put(input_, "vol");
  transport_.set_down("n1", true);

  obs::SpanLog::clear();
  obs::SpanLog::set_enabled(true);
  std::uint64_t root_trace = 0;
  {
    obs::ObsSpan root("test.remote_get");
    root_trace = root.trace_id();
    const auto result = client_->get("vol", work_ / "out.bin");
    EXPECT_TRUE(result.crc_ok);
    EXPECT_FALSE(result.degraded_nodes.empty());
  }
  obs::SpanLog::set_enabled(false);
  const auto events = obs::SpanLog::snapshot();
  obs::SpanLog::clear();

  // Every span of the degraded read — client-side rpc spans AND the
  // daemon/coordinator-side serve spans — carries the root's trace id.
  std::map<std::uint64_t, std::uint64_t> parent_of;  // span -> parent
  std::size_t client_rpc = 0, server_rpc = 0;
  for (const auto& ev : events) {
    if (ev.trace_id != root_trace) continue;
    parent_of[ev.span_id] = ev.parent_id;
    if (ev.name.rfind("net.rpc.", 0) == 0) ++client_rpc;
    if (ev.name.rfind("rpc.serve.", 0) == 0) ++server_rpc;
  }
  EXPECT_GT(client_rpc, 0u) << "no client rpc spans joined the trace";
  EXPECT_GT(server_rpc, 0u) << "no server-side spans joined the trace";

  // Connectedness: walking parent links from any span reaches the root
  // (parent 0) through spans of this same trace — one tree, no orphans.
  for (const auto& [span, parent] : parent_of) {
    std::uint64_t cur = parent;
    std::set<std::uint64_t> seen{span};
    while (cur != 0) {
      ASSERT_TRUE(parent_of.count(cur))
          << "span " << span << " dangles from parent " << cur
          << " outside the trace";
      ASSERT_TRUE(seen.insert(cur).second) << "parent cycle at " << cur;
      cur = parent_of[cur];
    }
  }
}

TEST_F(ClusterTest, ScrubFansOutAndFlagsCorruption) {
  client_->put(input_, "vol");
  ASSERT_TRUE(client_->scrub("vol").clean());

  // Flip one payload byte in some daemon-held chunk file.
  auto rv = client_->open("vol");
  const std::string fname = store::node_file_name(rv->store().version(), 0);
  const int owner = owner_of("vol", fname);
  ASSERT_GE(owner, 0);
  const fs::path victim =
      work_ / ("d" + std::to_string(owner)) / "vol" / fname;
  {
    std::fstream f(victim, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(100);
    f.put('\x7f');
  }

  const RemoteScrubResult result = client_->scrub("vol");
  EXPECT_FALSE(result.clean());
  EXPECT_GE(result.corrupt_blocks, 1u);
  EXPECT_EQ(result.damaged_nodes, std::vector<int>{0});
}

}  // namespace
}  // namespace approx::serving
