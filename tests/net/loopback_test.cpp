// LoopbackTransport: the deterministic in-process fabric used by the chaos
// suites.  These tests pin the fault-injection contract — down endpoints,
// scheduled deaths, slow nodes vs timeouts, partitions keyed on the
// caller's thread-local identity, and the seeded chaos schedule.
#include "net/loopback.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

namespace approx::net {
namespace {

using std::chrono::microseconds;

Frame request(std::uint16_t type, std::vector<std::uint8_t> payload = {}) {
  Frame f;
  f.type = type;
  f.request_id = 99;
  f.payload = std::move(payload);
  return f;
}

// Serve an echo handler that reverses the payload and counts invocations.
class LoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(transport_
                    .serve("server",
                           [this](const Frame& req, Frame& resp) {
                             served_.fetch_add(1);
                             resp.status = 0;
                             resp.payload.assign(req.payload.rbegin(),
                                                 req.payload.rend());
                           })
                    .ok());
  }

  void TearDown() override {
    LoopbackTransport::set_local_endpoint("client");
  }

  LoopbackTransport transport_;
  std::atomic<int> served_{0};
};

TEST_F(LoopbackTest, CallRoundTripExercisesFraming) {
  Frame resp;
  const NetStatus st = transport_.call("server", request(1, {1, 2, 3}), resp,
                                       microseconds(1'000'000));
  ASSERT_TRUE(st.ok()) << st.message;
  EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_EQ(resp.request_id, 99u) << "response must echo the request id";
  EXPECT_EQ(served_.load(), 1);
  EXPECT_EQ(transport_.delivered(), 1u);
}

TEST_F(LoopbackTest, UnknownEndpointIsUnreachable) {
  Frame resp;
  EXPECT_EQ(transport_.call("nobody", request(1), resp, microseconds(1000)).code,
            NetCode::kUnreachable);
}

TEST_F(LoopbackTest, DownAndUp) {
  transport_.set_down("server", true);
  Frame resp;
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kUnreachable);
  EXPECT_EQ(served_.load(), 0);
  transport_.set_down("server", false);
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(1000)).ok());
}

TEST_F(LoopbackTest, DownAfterKillsMidSequence) {
  transport_.set_down_after("server", 2);
  Frame resp;
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(1000)).ok());
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(1000)).ok());
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kUnreachable);
  EXPECT_EQ(served_.load(), 2);
}

TEST_F(LoopbackTest, DelayBeyondTimeoutIsTimeoutWithoutServing) {
  transport_.set_delay("server", microseconds(5000));
  Frame resp;
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kTimeout);
  EXPECT_EQ(served_.load(), 0) << "a too-slow node never answers in time";
  // A generous timeout clears it (the wait is simulated, not slept).
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(10'000)).ok());
  EXPECT_EQ(served_.load(), 1);
}

TEST_F(LoopbackTest, PartitionUsesThreadLocalIdentity) {
  LoopbackTransport::set_local_endpoint("island");
  transport_.partition("island", "server");
  Frame resp;
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kUnreachable);

  // A caller outside the partition still gets through.
  LoopbackTransport::set_local_endpoint("mainland");
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(1000)).ok());

  transport_.heal();
  LoopbackTransport::set_local_endpoint("island");
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(1000)).ok());
}

TEST_F(LoopbackTest, RequestDropVsReplyDrop) {
  LoopbackTransport::ChaosOptions opts;
  opts.request_drop_rate = 1.0;
  transport_.enable_chaos(1, opts);
  Frame resp;
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kTimeout);
  EXPECT_EQ(served_.load(), 0) << "dropped request: the server never saw it";

  opts.request_drop_rate = 0.0;
  opts.reply_drop_rate = 1.0;
  transport_.enable_chaos(1, opts);
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kTimeout);
  EXPECT_EQ(served_.load(), 1)
      << "dropped reply: the server DID the work — the idempotent-retry case";
}

TEST_F(LoopbackTest, CorruptReplyIsRejectedNotDelivered) {
  LoopbackTransport::ChaosOptions opts;
  opts.corrupt_rate = 1.0;
  transport_.enable_chaos(3, opts);
  Frame resp;
  EXPECT_EQ(
      transport_.call("server", request(1, {5, 6, 7}), resp, microseconds(1000))
          .code,
      NetCode::kBadFrame)
      << "a flipped wire byte must be caught by the frame CRC";
  EXPECT_EQ(served_.load(), 1);
}

TEST_F(LoopbackTest, ChaosScheduleReplaysFromSeed) {
  LoopbackTransport::ChaosOptions opts;
  opts.request_drop_rate = 0.3;
  opts.reply_drop_rate = 0.2;
  opts.delay_rate = 0.2;
  opts.delay_us = 10'000;
  opts.corrupt_rate = 0.1;

  auto run = [&](std::uint64_t seed) {
    transport_.enable_chaos(seed, opts);
    std::vector<NetCode> outcomes;
    for (int i = 0; i < 64; ++i) {
      Frame resp;
      outcomes.push_back(
          transport_.call("server", request(1, {1}), resp, microseconds(1000))
              .code);
    }
    return outcomes;
  };

  const auto a = run(42);
  const auto b = run(42);
  EXPECT_EQ(a, b) << "same seed must replay the same fault schedule";
  const auto c = run(43);
  EXPECT_NE(a, c) << "a different seed should differ somewhere in 64 calls";

  transport_.disable_chaos();
  Frame resp;
  EXPECT_TRUE(
      transport_.call("server", request(1), resp, microseconds(1000)).ok());
}

TEST_F(LoopbackTest, StopUnregistersEndpoint) {
  transport_.stop("server");
  Frame resp;
  EXPECT_EQ(transport_.call("server", request(1), resp, microseconds(1000)).code,
            NetCode::kUnreachable);
}

}  // namespace
}  // namespace approx::net
