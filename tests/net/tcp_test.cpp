// TcpTransport over real localhost sockets: ephemeral binding, framed
// round trips, large payloads, concurrency, and the failure surface
// (refused connections, slow handlers vs deadlines, stop/restart).
#include "net/tcp.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace approx::net {
namespace {

using std::chrono::microseconds;

Frame request(std::uint16_t type, std::vector<std::uint8_t> payload = {}) {
  Frame f;
  f.type = type;
  f.request_id = 7;
  f.payload = std::move(payload);
  return f;
}

TEST(Tcp, EphemeralBindReportsRealPort) {
  TcpTransport transport;
  Endpoint bound;
  ASSERT_TRUE(
      transport.serve("127.0.0.1:0", [](const Frame&, Frame&) {}, &bound)
          .ok());
  EXPECT_NE(bound, "127.0.0.1:0") << "port 0 must resolve to the bound port";
  EXPECT_EQ(bound.rfind("127.0.0.1:", 0), 0u);
  transport.stop(bound);
}

TEST(Tcp, RoundTripAndLargePayload) {
  TcpTransport transport;
  Endpoint bound;
  ASSERT_TRUE(transport
                  .serve("127.0.0.1:0",
                         [](const Frame& req, Frame& resp) {
                           resp.status = 5;
                           resp.payload = req.payload;
                         },
                         &bound)
                  .ok());

  Frame resp;
  ASSERT_TRUE(transport.call(bound, request(1, {9, 9}), resp,
                             microseconds(2'000'000))
                  .ok());
  EXPECT_EQ(resp.status, 5u);
  EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{9, 9}));

  // 1 MiB payload crosses many socket writes; framing must reassemble it.
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }
  ASSERT_TRUE(
      transport.call(bound, request(2, big), resp, microseconds(5'000'000))
          .ok());
  EXPECT_EQ(resp.payload, big);
  transport.stop(bound);
}

TEST(Tcp, ConcurrentCallers) {
  TcpTransport transport;
  Endpoint bound;
  std::atomic<int> served{0};
  ASSERT_TRUE(transport
                  .serve("127.0.0.1:0",
                         [&](const Frame& req, Frame& resp) {
                           served.fetch_add(1);
                           resp.payload = req.payload;
                         },
                         &bound)
                  .ok());

  constexpr int kThreads = 4;
  constexpr int kCallsEach = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // One transport per thread exercises independent connections.
      TcpTransport local;
      for (int i = 0; i < kCallsEach; ++i) {
        Frame resp;
        const auto payload = std::vector<std::uint8_t>{
            static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(i)};
        const NetStatus st = local.call(bound, request(1, payload), resp,
                                        microseconds(5'000'000));
        if (!st.ok() || resp.payload != payload) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(served.load(), kThreads * kCallsEach);
  transport.stop(bound);
}

TEST(Tcp, ConnectionRefusedIsUnreachable) {
  TcpTransport transport;
  Frame resp;
  // Port 1 is privileged and almost certainly closed; a refused connection
  // must map to kUnreachable, not hang until the timeout.
  const NetStatus st =
      transport.call("127.0.0.1:1", request(1), resp, microseconds(2'000'000));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code, NetCode::kUnreachable);
}

TEST(Tcp, SlowHandlerHitsDeadline) {
  TcpTransport transport;
  Endpoint bound;
  ASSERT_TRUE(transport
                  .serve("127.0.0.1:0",
                         [](const Frame&, Frame&) {
                           std::this_thread::sleep_for(
                               std::chrono::milliseconds(500));
                         },
                         &bound)
                  .ok());
  Frame resp;
  const NetStatus st =
      transport.call(bound, request(1), resp, microseconds(50'000));
  EXPECT_EQ(st.code, NetCode::kTimeout);
  transport.stop(bound);
}

TEST(Tcp, StopThenRestartOnNewPort) {
  TcpTransport transport;
  Endpoint bound;
  ASSERT_TRUE(transport
                  .serve("127.0.0.1:0",
                         [](const Frame& req, Frame& resp) {
                           resp.payload = req.payload;
                         },
                         &bound)
                  .ok());
  transport.stop(bound);

  Frame resp;
  EXPECT_FALSE(
      transport.call(bound, request(1), resp, microseconds(500'000)).ok())
      << "a stopped listener must not accept new calls";

  Endpoint bound2;
  ASSERT_TRUE(transport
                  .serve("127.0.0.1:0",
                         [](const Frame& req, Frame& reply) {
                           reply.payload = req.payload;
                         },
                         &bound2)
                  .ok());
  ASSERT_TRUE(transport.call(bound2, request(1, {1}), resp,
                             microseconds(2'000'000))
                  .ok());
  EXPECT_EQ(resp.payload, (std::vector<std::uint8_t>{1}));
  transport.stop(bound2);
}

}  // namespace
}  // namespace approx::net
