// Frame codec (net/wire.h): the framing layer must deliver exactly what
// was sent or reject the buffer as kBadFrame — never a silently corrupted
// frame, never an out-of-bounds read.
#include "net/wire.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace approx::net {
namespace {

Frame sample_frame() {
  Frame f;
  f.type = 0x1234;
  f.status = 7;
  f.request_id = 0x0102030405060708ull;
  f.trace_id = 0xAABBCCDDEEFF0011ull;
  f.parent_id = 42;
  f.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01};
  return f;
}

TEST(Wire, FrameRoundTrip) {
  const Frame in = sample_frame();
  const std::vector<std::uint8_t> wire = encode_frame(in);
  ASSERT_EQ(wire.size(), kFrameHeaderBytes + in.payload.size() + kFrameCrcBytes);

  Frame out;
  ASSERT_TRUE(decode_frame(wire, out).ok());
  EXPECT_EQ(out.type, in.type);
  EXPECT_EQ(out.status, in.status);
  EXPECT_EQ(out.request_id, in.request_id);
  EXPECT_EQ(out.trace_id, in.trace_id);
  EXPECT_EQ(out.parent_id, in.parent_id);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Wire, EmptyPayloadRoundTrip) {
  Frame in;
  in.type = 1;
  const auto wire = encode_frame(in);
  Frame out;
  ASSERT_TRUE(decode_frame(wire, out).ok());
  EXPECT_TRUE(out.payload.empty());
}

TEST(Wire, EveryByteFlipIsRejected) {
  const auto wire = encode_frame(sample_frame());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    for (const std::uint8_t flip : {std::uint8_t{0x01}, std::uint8_t{0x80}}) {
      std::vector<std::uint8_t> bad = wire;
      bad[i] ^= flip;
      Frame out;
      const NetStatus st = decode_frame(bad, out);
      EXPECT_FALSE(st.ok()) << "flip at byte " << i << " was accepted";
      EXPECT_EQ(st.code, NetCode::kBadFrame);
    }
  }
}

TEST(Wire, TruncationIsRejected) {
  const auto wire = encode_frame(sample_frame());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    Frame out;
    const NetStatus st =
        decode_frame({wire.data(), len}, out);
    EXPECT_FALSE(st.ok()) << "truncated to " << len << " bytes was accepted";
    EXPECT_EQ(st.code, NetCode::kBadFrame);
  }
  // Trailing garbage is a length mismatch, not a longer valid frame.
  auto padded = wire;
  padded.push_back(0);
  Frame out;
  EXPECT_EQ(decode_frame(padded, out).code, NetCode::kBadFrame);
}

TEST(Wire, OversizedPayloadHeaderIsRejected) {
  auto wire = encode_frame(sample_frame());
  // Claim a payload beyond kMaxPayload in the header length field.
  const std::uint32_t huge = static_cast<std::uint32_t>(kMaxPayload + 1);
  for (int i = 0; i < 4; ++i) {
    wire[36 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(huge >> (8 * i));
  }
  std::size_t payload_len = 0;
  EXPECT_EQ(frame_payload_len(wire, payload_len).code, NetCode::kBadFrame);
}

TEST(Wire, PayloadLenExtraction) {
  const Frame in = sample_frame();
  const auto wire = encode_frame(in);
  std::size_t payload_len = 0;
  ASSERT_TRUE(frame_payload_len(wire, payload_len).ok());
  EXPECT_EQ(payload_len, in.payload.size());
  EXPECT_EQ(frame_payload_len({wire.data(), kFrameHeaderBytes - 1}, payload_len)
                .code,
            NetCode::kBadFrame);
}

TEST(Wire, WriterReaderRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x01020304);
  w.u64(0x1122334455667788ull);
  w.str("hello");
  w.str("");
  const std::vector<std::uint8_t> blob = {9, 8, 7};
  w.bytes(blob);
  const auto buf = w.take();

  WireReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x01020304u);
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.bytes(), blob);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.done());
}

TEST(Wire, ReaderLatchesOutOfBounds) {
  WireWriter w;
  w.u16(0x1234);
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0u);  // past the end: zero, not UB
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u8(), 0u);  // stays latched
}

TEST(Wire, ReaderRejectsLyingStringLength) {
  WireWriter w;
  w.u32(1000);  // claims 1000 bytes follow; none do
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Wire, UnconsumedBytesFailDone) {
  WireWriter w;
  w.u32(1);
  w.u32(2);
  const auto buf = w.take();
  WireReader r(buf);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done()) << "4 bytes left unread must fail strict schemas";
}

}  // namespace
}  // namespace approx::net
