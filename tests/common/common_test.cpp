// Foundations: aligned buffers, PRNG, CRC-32, stopwatch, error types.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "common/buffer.h"
#include "common/crc32.h"
#include "common/error.h"
#include "common/prng.h"
#include "common/stopwatch.h"

namespace approx {
namespace {

// ---------------------------------------------------------------------------
// AlignedBuffer / StripeBuffers
// ---------------------------------------------------------------------------

TEST(AlignedBuffer, IsAlignedAndZeroed) {
  for (const std::size_t size : {1u, 63u, 64u, 65u, 4096u, 100000u}) {
    AlignedBuffer buf(size);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u) << size;
    EXPECT_EQ(buf.size(), size);
    for (std::size_t i = 0; i < size; ++i) ASSERT_EQ(buf[i], 0) << i;
  }
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.size(), 0u);
  AlignedBuffer sized(0);
  EXPECT_TRUE(sized.empty());
}

TEST(AlignedBuffer, CopySemantics) {
  AlignedBuffer a(128);
  for (std::size_t i = 0; i < 128; ++i) a[i] = static_cast<std::uint8_t>(i);
  AlignedBuffer b(a);
  EXPECT_EQ(std::memcmp(a.data(), b.data(), 128), 0);
  b[0] = 0xff;
  EXPECT_EQ(a[0], 0);  // deep copy
  AlignedBuffer c(64);
  c = a;
  EXPECT_EQ(c.size(), 128u);
  EXPECT_EQ(std::memcmp(a.data(), c.data(), 128), 0);
}

TEST(AlignedBuffer, MoveSemantics) {
  AlignedBuffer a(64);
  a[5] = 42;
  const std::uint8_t* p = a.data();
  AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[5], 42);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move): specified
}

TEST(AlignedBuffer, SelfAssignment) {
  AlignedBuffer a(32);
  a[0] = 7;
  a = a;
  EXPECT_EQ(a[0], 7);
  EXPECT_EQ(a.size(), 32u);
}

TEST(AlignedBuffer, ClearZeroes) {
  AlignedBuffer a(100);
  Rng rng(1);
  fill_random(a.data(), a.size(), rng);
  a.clear();
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i], 0);
}

TEST(StripeBuffers, Geometry) {
  StripeBuffers s(5, 1024);
  EXPECT_EQ(s.nodes(), 5);
  EXPECT_EQ(s.bytes_per_node(), 1024u);
  EXPECT_EQ(s.spans().size(), 5u);
  EXPECT_EQ(s.const_spans().size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.node(i).size(), 1024u);
}

TEST(StripeBuffers, NodesAreIndependent) {
  StripeBuffers s(3, 64);
  s.node(1)[0] = 0xaa;
  EXPECT_EQ(s.node(0)[0], 0);
  EXPECT_EQ(s.node(2)[0], 0);
  s.clear_node(1);
  EXPECT_EQ(s.node(1)[0], 0);
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  bool diverged = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    if (va != c()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, FillRandomCoversOddLengths) {
  Rng rng(13);
  std::vector<std::uint8_t> buf(37, 0);
  fill_random(buf.data(), buf.size(), rng);
  int nonzero = 0;
  for (const auto b : buf) nonzero += b != 0;
  EXPECT_GT(nonzero, 20);  // all-zero tail would indicate a fill bug
}

TEST(Rng, ZeroSeedIsWellMixed) {
  Rng rng(0);
  std::uint64_t acc = 0;
  for (int i = 0; i < 10; ++i) acc |= rng();
  EXPECT_NE(acc, 0u);
}

// ---------------------------------------------------------------------------
// CRC-32
// ---------------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(digits), 0xcbf43926u);
  EXPECT_EQ(crc32({}), 0u);
  const std::uint8_t a[] = {'a'};
  EXPECT_EQ(crc32(a), 0xe8b7be43u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  Rng rng(17);
  std::vector<std::uint8_t> data(256);
  fill_random(data.data(), data.size(), rng);
  const std::uint32_t base = crc32(data);
  for (int bit = 0; bit < 32; ++bit) {
    data[static_cast<std::size_t>(bit * 7 % 256)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
    EXPECT_NE(crc32(data), base);
    data[static_cast<std::size_t>(bit * 7 % 256)] ^=
        static_cast<std::uint8_t>(1u << (bit % 8));
  }
  EXPECT_EQ(crc32(data), base);
}

// ---------------------------------------------------------------------------
// Error machinery
// ---------------------------------------------------------------------------

TEST(Errors, RequireThrowsWithLocation) {
  try {
    APPROX_REQUIRE(1 == 2, "math is broken");
    FAIL() << "should have thrown";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math is broken"), std::string::npos);
    EXPECT_NE(what.find("common_test.cpp"), std::string::npos);
  }
}

TEST(Errors, HierarchyIsSane) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch sw;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(sw.seconds(), 0.0);
  EXPECT_GE(sw.millis(), sw.seconds());
}

}  // namespace
}  // namespace approx
