// ThreadPool: chunking, exception propagation, reuse, two-level priority
// scheduling and edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"

namespace approx {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NonZeroBase) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  std::size_t expect = 0;
  for (std::size_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, InvertedRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 4, [](std::size_t, std::size_t) {}),
               InvalidArgument);
}

TEST(ThreadPool, SmallRangeFewerChunksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(hi - lo, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ChunksAreBalanced) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::size_t> sizes;
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(hi - lo);
  });
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 10u);
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*mx - *mn, 1u);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo >= 25) throw InvalidArgument("boom");
                                 }),
               InvalidArgument);
  // The pool must remain usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    ok.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 37, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 50u * 37u);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1000u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

// --- task API -------------------------------------------------------------

TEST(ThreadPoolTask, SubmitRunsAndWaitCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto t = pool.submit([&] { ran.fetch_add(1); });
  ASSERT_TRUE(t.valid());
  t.wait();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTask, DefaultConstructedTaskIsInvalid) {
  ThreadPool::Task t;
  EXPECT_FALSE(t.valid());
}

TEST(ThreadPoolTask, ManyTasksAllRunExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  std::vector<ThreadPool::Task> tasks;
  tasks.reserve(hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back(pool.submit([&hits, i] { hits[i].fetch_add(1); }));
  }
  for (auto& t : tasks) t.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTask, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  auto t = pool.submit([] { throw InvalidArgument("task boom"); });
  EXPECT_THROW(t.wait(), InvalidArgument);
  // Pool stays usable after a failed task.
  auto ok = pool.submit([] {});
  ok.wait();
  EXPECT_TRUE(ok.done());
}

TEST(ThreadPoolTask, WaitHelpsOnSingleWorkerPool) {
  // With one worker busy inside wait(), progress requires the helping wait
  // (the waiter drains the queue itself).  A deadlock here hangs the test.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  auto outer = pool.submit([&] {
    auto inner = pool.submit([&] { ran.fetch_add(1); });
    inner.wait();
    ran.fetch_add(1);
  });
  outer.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTask, NestedParallelForInsideTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  std::vector<ThreadPool::Task> tasks;
  for (int t = 0; t < 4; ++t) {
    tasks.push_back(pool.submit([&] {
      pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
        sum.fetch_add(hi - lo);
      });
    }));
  }
  for (auto& t : tasks) t.wait();
  EXPECT_EQ(sum.load(), 400u);
}

TEST(ThreadPoolTask, WaitIsIdempotent) {
  ThreadPool pool(2);
  auto t = pool.submit([] {});
  t.wait();
  t.wait();  // second wait on a finished task returns immediately
  EXPECT_TRUE(t.done());
}

TEST(ThreadPoolTrace, SubmitCarriesSubmitterContext) {
  ThreadPool pool(2);
  TraceContext seen;
  {
    TraceContextScope scope({42, 7});
    pool.submit([&] { seen = current_trace_context(); }).wait();
  }
  EXPECT_EQ(seen.trace_id, 42u);
  EXPECT_EQ(seen.parent_id, 7u);
  // A task submitted with no active context runs with none - the worker
  // does not leak the identity of the previous task it ran.
  pool.submit([&] { seen = current_trace_context(); }).wait();
  EXPECT_FALSE(seen.active());
}

TEST(ThreadPoolTrace, ParallelForChunksInheritCallerContext) {
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  {
    TraceContextScope scope({99, 3});
    pool.parallel_for(0, 64, [&](std::size_t, std::size_t) {
      const TraceContext ctx = current_trace_context();
      if (ctx.trace_id != 99 || ctx.parent_id != 3) wrong.fetch_add(1);
    });
  }
  EXPECT_EQ(wrong.load(), 0);
  // The caller's own context is restored after the helping wait, even
  // though it may have run foreign-context chunks inline.
  EXPECT_FALSE(current_trace_context().active());
}

TEST(ThreadPoolTrace, HelpingWaitRestoresWaiterContext) {
  ThreadPool pool(1);
  // The outer task (context A) blocks on an inner task (context B); with a
  // single worker the helping wait makes the outer thread run the inner
  // task inline, and its own context must survive the excursion.
  TraceContext after_inner;
  ThreadPool::Task outer;
  {
    TraceContextScope scope({1, 1});
    outer = pool.submit([&] {
      ThreadPool::Task inner;
      {
        TraceContextScope inner_scope({2, 2});
        inner = pool.submit([] {});
      }
      inner.wait();  // runs `inner` (context {2,2}) on this thread
      after_inner = current_trace_context();
    });
  }
  outer.wait();
  EXPECT_EQ(after_inner.trace_id, 1u);
  EXPECT_EQ(after_inner.parent_id, 1u);
}

// --- two-level priority ---------------------------------------------------

// Holds a pool's only worker inside a task so the queues can be staged
// deterministically, then releases it and spin-waits for completions
// (Task::wait would make this thread help and perturb the pop order).
class GatedSingleWorker {
 public:
  explicit GatedSingleWorker(ThreadPool& pool) : pool_(pool) {
    pool_.submit(TaskClass::kInteractive, [this] {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return released_; });
    });
    // Let the worker actually pick the gate task up before staging.
    while (pool_.queue_depth(TaskClass::kInteractive) != 0) {
      std::this_thread::yield();
    }
  }

  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool released_ = false;
};

TEST(ThreadPoolPriority, InteractivePreemptsBulkUnderSaturation) {
  ThreadPool pool(1);
  GatedSingleWorker gate(pool);

  std::mutex order_mu;
  std::vector<TaskClass> order;
  std::atomic<int> completed{0};
  auto record = [&](TaskClass cls) {
    {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(cls);
    }
    completed.fetch_add(1);
  };

  const int kBulk = 4, kInteractive = 16;
  for (int i = 0; i < kBulk; ++i) {
    pool.submit(TaskClass::kBulk, [&] { record(TaskClass::kBulk); });
  }
  for (int i = 0; i < kInteractive; ++i) {
    pool.submit(TaskClass::kInteractive,
                [&] { record(TaskClass::kInteractive); });
  }
  EXPECT_EQ(pool.queue_depth(TaskClass::kBulk), 4u);
  EXPECT_EQ(pool.queue_depth(TaskClass::kInteractive), 16u);

  const std::uint64_t aged_before = pool.aged_bulk_pops();
  gate.release();
  while (completed.load() != kBulk + kInteractive) std::this_thread::yield();

  // Single worker => completion order is exactly pop order.  Policy:
  // 8 interactive, 1 aged bulk, the remaining 8 interactive, 3 bulk (the
  // last 3 bulk pops drain an empty interactive queue, so only the first
  // forced pop counts as aged).
  ASSERT_EQ(order.size(), 20u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], TaskClass::kInteractive);
  EXPECT_EQ(order[8], TaskClass::kBulk);
  for (int i = 9; i < 17; ++i) EXPECT_EQ(order[i], TaskClass::kInteractive);
  for (int i = 17; i < 20; ++i) EXPECT_EQ(order[i], TaskClass::kBulk);
  EXPECT_EQ(pool.aged_bulk_pops() - aged_before, 1u);
}

TEST(ThreadPoolPriority, BulkIsNeverStarvedBeyondAgingBound) {
  ThreadPool pool(1);
  GatedSingleWorker gate(pool);

  std::atomic<int> interactive_done{0};
  std::atomic<int> bulk_position{-1};
  std::atomic<int> completed{0};
  pool.submit(TaskClass::kBulk, [&] {
    bulk_position.store(interactive_done.load());
    completed.fetch_add(1);
  });
  const int kFlood = 100;
  for (int i = 0; i < kFlood; ++i) {
    pool.submit(TaskClass::kInteractive, [&] {
      interactive_done.fetch_add(1);
      completed.fetch_add(1);
    });
  }
  gate.release();
  while (completed.load() != kFlood + 1) std::this_thread::yield();
  // The one bulk task ran after at most kBulkAgingLimit interactive pops,
  // despite 100 interactive tasks being queued ahead of it.
  ASSERT_GE(bulk_position.load(), 0);
  EXPECT_LE(bulk_position.load(),
            static_cast<int>(ThreadPool::kBulkAgingLimit));
}

TEST(ThreadPoolPriority, PureInteractiveStreamPaysNoAgingPops) {
  ThreadPool pool(1);
  GatedSingleWorker gate(pool);
  const std::uint64_t aged_before = pool.aged_bulk_pops();
  std::atomic<int> completed{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit(TaskClass::kInteractive, [&] { completed.fetch_add(1); });
  }
  gate.release();
  while (completed.load() != 50) std::this_thread::yield();
  // The aging clock only ticks while bulk work waits: an all-interactive
  // workload never triggers forced bulk pops.
  EXPECT_EQ(pool.aged_bulk_pops(), aged_before);
}

TEST(ThreadPoolPriority, SubmitInheritsCallersClass) {
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::current_task_class(), TaskClass::kInteractive);
  TaskClass seen = TaskClass::kInteractive;
  TaskClass nested_seen = TaskClass::kInteractive;
  {
    ThreadPool::TaskClassScope scope(TaskClass::kBulk);
    EXPECT_EQ(ThreadPool::current_task_class(), TaskClass::kBulk);
    pool.submit([&] {
          seen = ThreadPool::current_task_class();
          // Transitive inheritance: work submitted by bulk work is bulk.
          pool.submit([&] { nested_seen = ThreadPool::current_task_class(); })
              .wait();
        })
        .wait();
  }
  EXPECT_EQ(ThreadPool::current_task_class(), TaskClass::kInteractive);
  EXPECT_EQ(seen, TaskClass::kBulk);
  EXPECT_EQ(nested_seen, TaskClass::kBulk);
  // Outside the scope, submissions are interactive again.
  TaskClass after = TaskClass::kBulk;
  pool.submit([&] { after = ThreadPool::current_task_class(); }).wait();
  EXPECT_EQ(after, TaskClass::kInteractive);
}

TEST(ThreadPoolPriority, ParallelForChunksCarryExplicitClass) {
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  pool.parallel_for(TaskClass::kBulk, 0, 64, [&](std::size_t, std::size_t) {
    if (ThreadPool::current_task_class() != TaskClass::kBulk) {
      wrong.fetch_add(1);
    }
  });
  EXPECT_EQ(wrong.load(), 0);
  // The caller's own class survives the helping wait even though it ran
  // bulk chunks inline.
  EXPECT_EQ(ThreadPool::current_task_class(), TaskClass::kInteractive);
}

TEST(ThreadPoolPriority, HelpingWaitsCrossClassesWithoutDeadlock) {
  // A bulk task blocked on interactive subtasks (and vice versa) must make
  // progress on a single-worker pool: the helping pop never refuses the
  // only runnable class.  A deadlock here hangs the test (ctest TIMEOUT).
  ThreadPool pool(1);
  std::atomic<std::size_t> sum{0};
  auto bulk_outer = pool.submit(TaskClass::kBulk, [&] {
    pool.parallel_for(TaskClass::kInteractive, 0, 100,
                      [&](std::size_t lo, std::size_t hi) {
                        sum.fetch_add(hi - lo);
                      });
  });
  bulk_outer.wait();
  EXPECT_EQ(sum.load(), 100u);

  auto interactive_outer = pool.submit(TaskClass::kInteractive, [&] {
    auto inner = pool.submit(TaskClass::kBulk, [&] { sum.fetch_add(1); });
    inner.wait();
  });
  interactive_outer.wait();
  EXPECT_EQ(sum.load(), 101u);
}

TEST(ThreadPoolPriority, QueueDepthTracksBothClasses) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.queue_depth(TaskClass::kInteractive), 0u);
  EXPECT_EQ(pool.queue_depth(TaskClass::kBulk), 0u);
  GatedSingleWorker gate(pool);
  std::atomic<int> completed{0};
  for (int i = 0; i < 3; ++i) {
    pool.submit(TaskClass::kBulk, [&] { completed.fetch_add(1); });
  }
  pool.submit(TaskClass::kInteractive, [&] { completed.fetch_add(1); });
  EXPECT_EQ(pool.queue_depth(TaskClass::kBulk), 3u);
  EXPECT_EQ(pool.queue_depth(TaskClass::kInteractive), 1u);
  gate.release();
  while (completed.load() != 4) std::this_thread::yield();
  EXPECT_EQ(pool.queue_depth(TaskClass::kInteractive), 0u);
  EXPECT_EQ(pool.queue_depth(TaskClass::kBulk), 0u);
}

}  // namespace
}  // namespace approx
