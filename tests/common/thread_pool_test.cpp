// ThreadPool: chunking, exception propagation, reuse and edge cases.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>

#include "common/error.h"
#include "common/thread_pool.h"

namespace approx {
namespace {

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, CoversWholeRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NonZeroBase) {
  ThreadPool pool(3);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(100, 200, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) sum.fetch_add(i);
  });
  std::size_t expect = 0;
  for (std::size_t i = 100; i < 200; ++i) expect += i;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, InvertedRangeThrows) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(5, 4, [](std::size_t, std::size_t) {}),
               InvalidArgument);
}

TEST(ThreadPool, SmallRangeFewerChunksThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 3, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LE(hi - lo, 1u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, ChunksAreBalanced) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::size_t> sizes;
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    std::lock_guard<std::mutex> lock(mu);
    sizes.push_back(hi - lo);
  });
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}), 10u);
  const auto [mn, mx] = std::minmax_element(sizes.begin(), sizes.end());
  EXPECT_LE(*mx - *mn, 1u);
}

TEST(ThreadPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t lo, std::size_t) {
                                   if (lo >= 25) throw InvalidArgument("boom");
                                 }),
               InvalidArgument);
  // The pool must remain usable after an exception.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 10, [&](std::size_t lo, std::size_t hi) {
    ok.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ReusableAcrossManyInvocations) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, 37, [&](std::size_t lo, std::size_t hi) {
      total.fetch_add(hi - lo);
    });
  }
  EXPECT_EQ(total.load(), 50u * 37u);
}

TEST(ThreadPool, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 1000u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

// --- task API -------------------------------------------------------------

TEST(ThreadPoolTask, SubmitRunsAndWaitCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto t = pool.submit([&] { ran.fetch_add(1); });
  ASSERT_TRUE(t.valid());
  t.wait();
  EXPECT_TRUE(t.done());
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTask, DefaultConstructedTaskIsInvalid) {
  ThreadPool::Task t;
  EXPECT_FALSE(t.valid());
}

TEST(ThreadPoolTask, ManyTasksAllRunExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(200);
  std::vector<ThreadPool::Task> tasks;
  tasks.reserve(hits.size());
  for (std::size_t i = 0; i < hits.size(); ++i) {
    tasks.push_back(pool.submit([&hits, i] { hits[i].fetch_add(1); }));
  }
  for (auto& t : tasks) t.wait();
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTask, WaitRethrowsTaskException) {
  ThreadPool pool(2);
  auto t = pool.submit([] { throw InvalidArgument("task boom"); });
  EXPECT_THROW(t.wait(), InvalidArgument);
  // Pool stays usable after a failed task.
  auto ok = pool.submit([] {});
  ok.wait();
  EXPECT_TRUE(ok.done());
}

TEST(ThreadPoolTask, WaitHelpsOnSingleWorkerPool) {
  // With one worker busy inside wait(), progress requires the helping wait
  // (the waiter drains the queue itself).  A deadlock here hangs the test.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  auto outer = pool.submit([&] {
    auto inner = pool.submit([&] { ran.fetch_add(1); });
    inner.wait();
    ran.fetch_add(1);
  });
  outer.wait();
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTask, NestedParallelForInsideTaskDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  std::vector<ThreadPool::Task> tasks;
  for (int t = 0; t < 4; ++t) {
    tasks.push_back(pool.submit([&] {
      pool.parallel_for(0, 100, [&](std::size_t lo, std::size_t hi) {
        sum.fetch_add(hi - lo);
      });
    }));
  }
  for (auto& t : tasks) t.wait();
  EXPECT_EQ(sum.load(), 400u);
}

TEST(ThreadPoolTask, WaitIsIdempotent) {
  ThreadPool pool(2);
  auto t = pool.submit([] {});
  t.wait();
  t.wait();  // second wait on a finished task returns immediately
  EXPECT_TRUE(t.done());
}

TEST(ThreadPoolTrace, SubmitCarriesSubmitterContext) {
  ThreadPool pool(2);
  TraceContext seen;
  {
    TraceContextScope scope({42, 7});
    pool.submit([&] { seen = current_trace_context(); }).wait();
  }
  EXPECT_EQ(seen.trace_id, 42u);
  EXPECT_EQ(seen.parent_id, 7u);
  // A task submitted with no active context runs with none - the worker
  // does not leak the identity of the previous task it ran.
  pool.submit([&] { seen = current_trace_context(); }).wait();
  EXPECT_FALSE(seen.active());
}

TEST(ThreadPoolTrace, ParallelForChunksInheritCallerContext) {
  ThreadPool pool(4);
  std::atomic<int> wrong{0};
  {
    TraceContextScope scope({99, 3});
    pool.parallel_for(0, 64, [&](std::size_t, std::size_t) {
      const TraceContext ctx = current_trace_context();
      if (ctx.trace_id != 99 || ctx.parent_id != 3) wrong.fetch_add(1);
    });
  }
  EXPECT_EQ(wrong.load(), 0);
  // The caller's own context is restored after the helping wait, even
  // though it may have run foreign-context chunks inline.
  EXPECT_FALSE(current_trace_context().active());
}

TEST(ThreadPoolTrace, HelpingWaitRestoresWaiterContext) {
  ThreadPool pool(1);
  // The outer task (context A) blocks on an inner task (context B); with a
  // single worker the helping wait makes the outer thread run the inner
  // task inline, and its own context must survive the excursion.
  TraceContext after_inner;
  ThreadPool::Task outer;
  {
    TraceContextScope scope({1, 1});
    outer = pool.submit([&] {
      ThreadPool::Task inner;
      {
        TraceContextScope inner_scope({2, 2});
        inner = pool.submit([] {});
      }
      inner.wait();  // runs `inner` (context {2,2}) on this thread
      after_inner = current_trace_context();
    });
  }
  outer.wait();
  EXPECT_EQ(after_inner.trace_id, 1u);
  EXPECT_EQ(after_inner.parent_id, 1u);
}

}  // namespace
}  // namespace approx
