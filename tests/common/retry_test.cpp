// The shared retry/backoff policy (common/retry.h): the same loop drives
// store I/O retries and per-node RPC retries, so its schedule must be
// deterministic, clamped, and honest about attempt counts.
#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

namespace approx {
namespace {

struct FakeStatus {
  bool good = false;
  bool ok() const { return good; }
};

RetryPolicy no_sleep_policy(int attempts) {
  RetryPolicy p;
  p.max_attempts = attempts;
  p.sleeper = [](std::chrono::microseconds) {};
  return p;
}

TEST(BackoffSchedule, GrowsGeometricallyAndClamps) {
  RetryPolicy p;
  p.base_delay = std::chrono::microseconds(100);
  p.max_delay = std::chrono::microseconds(450);
  p.multiplier = 2.0;
  BackoffSchedule sched(p);
  EXPECT_EQ(sched.next().count(), 100);
  EXPECT_EQ(sched.next().count(), 200);
  EXPECT_EQ(sched.next().count(), 400);
  EXPECT_EQ(sched.next().count(), 450);  // clamped
  EXPECT_EQ(sched.next().count(), 450);
}

TEST(BackoffSchedule, JitterIsSeededAndBounded) {
  RetryPolicy p;
  p.base_delay = std::chrono::microseconds(1000);
  p.max_delay = std::chrono::microseconds(1'000'000);
  p.jitter = 0.5;
  p.jitter_seed = 7;

  auto draw = [&] {
    BackoffSchedule sched(p);
    std::vector<std::int64_t> v;
    for (int i = 0; i < 8; ++i) v.push_back(sched.next().count());
    return v;
  };
  const auto a = draw();
  const auto b = draw();
  EXPECT_EQ(a, b) << "same seed must replay the same schedule";
  // First delay is base * [1 - jitter, 1 + jitter].
  EXPECT_GE(a[0], 500);
  EXPECT_LE(a[0], 1500);

  p.jitter_seed = 8;
  EXPECT_NE(a, draw()) << "different seed should perturb the schedule";
}

TEST(WithRetry, StopsOnSuccess) {
  int calls = 0;
  const auto st = with_retry<FakeStatus>(
      no_sleep_policy(5),
      [&] {
        ++calls;
        return FakeStatus{calls >= 3};
      },
      [](const FakeStatus&) { return true; });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
}

TEST(WithRetry, RespectsMaxAttemptsAndCountsRetries) {
  int calls = 0;
  int retries = 0;
  const auto st = with_retry<FakeStatus>(
      no_sleep_policy(4), [&] { ++calls; return FakeStatus{false}; },
      [](const FakeStatus&) { return true; }, [&] { ++retries; });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(retries, 3);
}

TEST(WithRetry, NonRetryableFailsImmediately) {
  int calls = 0;
  const auto st = with_retry<FakeStatus>(
      no_sleep_policy(4), [&] { ++calls; return FakeStatus{false}; },
      [](const FakeStatus&) { return false; });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace approx
