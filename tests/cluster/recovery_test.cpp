// Event-driven cluster simulator: kernel behaviour, resource accounting,
// workload builders and the qualitative properties Fig. 13 depends on.
#include <gtest/gtest.h>

#include "cluster/recovery.h"
#include "cluster/sim.h"
#include "cluster/workload.h"
#include "codes/array_codes.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"

namespace approx::cluster {
namespace {

// ---------------------------------------------------------------------------
// Simulation kernel
// ---------------------------------------------------------------------------

TEST(Sim, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.at(2.0, [&] { order.push_back(2); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(3.0, [&] { order.push_back(3); });
  EXPECT_DOUBLE_EQ(sim.run(), 3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Sim, TiesBreakFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sim, SchedulingIntoThePastThrows) {
  Simulation sim;
  sim.at(1.0, [&] { EXPECT_THROW(sim.at(0.5, [] {}), InvalidArgument); });
  sim.run();
}

TEST(FifoResource, SerializesRequests) {
  Simulation sim;
  FifoResource disk(100.0, 0.0);  // 100 B/s
  std::vector<double> done;
  disk.submit(sim, 100, [&] { done.push_back(sim.now()); });
  disk.submit(sim, 100, [&] { done.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);
  EXPECT_DOUBLE_EQ(disk.busy_seconds(), 2.0);
  EXPECT_EQ(disk.bytes_served(), 200u);
}

TEST(FifoResource, LatencyAddsPerRequest) {
  Simulation sim;
  FifoResource disk(1000.0, 0.5);
  double done = 0;
  disk.submit(sim, 1000, [&] { done = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(done, 1.5);
}

// ---------------------------------------------------------------------------
// simulate_recovery
// ---------------------------------------------------------------------------

ClusterConfig fast_config() {
  ClusterConfig c;
  c.disk_latency = 0;
  c.nic_latency = 0;
  c.task_bytes = std::size_t{16} << 20;
  return c;
}

TEST(Recovery, EmptyWorkloadTakesZeroTime) {
  RecoveryWorkload w;
  w.nodes = 4;
  const auto r = simulate_recovery(w, fast_config());
  EXPECT_DOUBLE_EQ(r.seconds, 0.0);
}

TEST(Recovery, SingleReadWriteBoundsAreSane) {
  ClusterConfig c = fast_config();
  RecoveryWorkload w;
  w.nodes = 3;
  const std::size_t GB = std::size_t{1} << 30;
  w.reads = {{1, GB}, {2, GB}};
  w.writes = {{0, GB}};
  w.compute_bytes = 2 * GB;
  const auto r = simulate_recovery(w, c);
  // Lower bound: the slowest single stage on the critical path.
  const double disk_read_time = static_cast<double>(GB) / c.disk_read_bw;
  EXPECT_GT(r.seconds, disk_read_time);
  // Upper bound: fully serialized pipeline.
  const double serial = 2.0 * static_cast<double>(GB) / c.disk_read_bw +
                        2.0 * static_cast<double>(GB) / c.nic_bw +
                        2.0 * static_cast<double>(GB) / c.coding_bw +
                        static_cast<double>(GB) / c.disk_write_bw;
  EXPECT_LT(r.seconds, serial * 1.05);
}

TEST(Recovery, PipeliningBeatsSerialExecution) {
  ClusterConfig c = fast_config();
  RecoveryWorkload w;
  w.nodes = 4;
  const std::size_t GB = std::size_t{1} << 30;
  w.reads = {{1, GB}, {2, GB}, {3, GB}};
  w.writes = {{0, GB}};
  w.compute_bytes = 3 * GB;
  const auto pipelined = simulate_recovery(w, c);
  ClusterConfig serial_cfg = c;
  serial_cfg.task_bytes = 4 * GB;  // single task: no overlap
  const auto serial = simulate_recovery(w, serial_cfg);
  EXPECT_LT(pipelined.seconds, serial.seconds);
}

TEST(Recovery, HalvingReadVolumeSpeedsUpRecovery) {
  ClusterConfig c = fast_config();
  const std::size_t GB = std::size_t{1} << 30;
  RecoveryWorkload full;
  full.nodes = 6;
  for (int i = 1; i < 6; ++i) full.reads.emplace_back(i, GB);
  full.writes = {{0, GB}};
  full.compute_bytes = 5 * GB;

  RecoveryWorkload half = full;
  half.reads.clear();
  for (int i = 1; i < 6; ++i) half.reads.emplace_back(i, GB / 4);
  half.compute_bytes = 5 * GB / 4;
  half.writes = {{0, GB / 4}};

  const auto t_full = simulate_recovery(full, c);
  const auto t_half = simulate_recovery(half, c);
  EXPECT_LT(t_half.seconds * 2.0, t_full.seconds);
}

TEST(Recovery, Deterministic) {
  ClusterConfig c;
  RecoveryWorkload w;
  w.nodes = 5;
  w.reads = {{1, 123456789}, {2, 987654321}, {4, 55555}};
  w.writes = {{0, 111111111}, {3, 222222222}};
  w.compute_bytes = 999999999;
  const auto a = simulate_recovery(w, c);
  const auto b = simulate_recovery(w, c);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_GT(a.seconds, 0.0);
}

// ---------------------------------------------------------------------------
// Workload builders
// ---------------------------------------------------------------------------

TEST(Workload, RsSingleFailureReadsKNodes) {
  auto rs = codes::make_rs(6, 3);
  const std::size_t cap = std::size_t{1} << 30;
  auto w = base_code_recovery(*rs, std::vector<int>{2}, cap);
  EXPECT_EQ(w.reads.size(), 6u);  // k sources
  for (const auto& [node, bytes] : w.reads) EXPECT_EQ(bytes, cap);
  ASSERT_EQ(w.writes.size(), 1u);
  EXPECT_EQ(w.writes[0], std::make_pair(2, cap));
}

TEST(Workload, LrcSingleFailureReadsOnlyTheLocalGroup) {
  auto lrc = codes::make_lrc(8, 4, 2);  // groups of 2
  const std::size_t cap = std::size_t{1} << 30;
  auto w = base_code_recovery(*lrc, std::vector<int>{0}, cap);
  EXPECT_LE(w.reads.size(), 2u);  // group partner + local parity
  auto rs = codes::make_rs(8, 3);
  auto w_rs = base_code_recovery(*rs, std::vector<int>{0}, cap);
  EXPECT_LT(w.total_read(), w_rs.total_read());
}

TEST(Workload, UnrepairablePatternThrows) {
  auto rs = codes::make_rs(4, 2);
  EXPECT_THROW(
      base_code_recovery(*rs, std::vector<int>{0, 1, 2}, std::size_t{1} << 20),
      InvalidArgument);
}

TEST(Workload, ApprDoubleFailureMovesFarFewerBytesThanBase) {
  // The core of Fig. 13: double failure in one stripe, r=1.  The base
  // RS(k,3) deployment rebuilds both nodes completely; APPR.RS rebuilds
  // only the important 1/h fraction.
  const int k = 5, h = 4;
  const std::size_t cap = std::size_t{1} << 30;
  core::ApprParams params{codes::Family::RS, k, 1, 2, h, core::Structure::Even};
  core::ApproximateCode appr(params, 4096);
  auto w_appr = appr_code_recovery(appr, std::vector<int>{0, 1}, cap);

  auto rs = codes::make_rs(k, 3);
  auto w_rs = base_code_recovery(*rs, std::vector<int>{0, 1}, cap);

  EXPECT_LT(w_appr.total_read() * 2, w_rs.total_read());
  EXPECT_LT(w_appr.total_written() * 2, w_rs.total_written());
  EXPECT_LT(w_appr.compute_bytes * 2, w_rs.compute_bytes);
}

TEST(Workload, ApprSingleFailureIsLocalOnly) {
  core::ApprParams params{codes::Family::STAR, 5, 2, 1, 4, core::Structure::Even};
  core::ApproximateCode appr(params, 4096);
  const std::size_t cap = std::size_t{1} << 28;
  auto w = appr_code_recovery(appr, std::vector<int>{0}, cap);
  // All reads come from stripe 0 members only.
  for (const auto& [node, bytes] : w.reads) {
    EXPECT_LT(node, params.nodes_per_stripe());
    (void)bytes;
  }
}

TEST(EndToEnd, ApprRecoversFasterUnderDoubleFailure) {
  // Fig. 13 headline: ~4x+ faster recovery under double node failure.
  const int k = 5, h = 4;
  const std::size_t cap = std::size_t{256} << 20;
  ClusterConfig config;
  core::ApprParams params{codes::Family::RS, k, 1, 2, h, core::Structure::Even};
  core::ApproximateCode appr(params, 4096);
  auto rs = codes::make_rs(k, 3);

  const auto t_appr = simulate_recovery(
      appr_code_recovery(appr, std::vector<int>{0, 1}, cap), config);
  const auto t_rs = simulate_recovery(
      base_code_recovery(*rs, std::vector<int>{0, 1}, cap), config);
  EXPECT_GT(t_rs.seconds, 2.5 * t_appr.seconds)
      << "rs=" << t_rs.seconds << " appr=" << t_appr.seconds;
}

}  // namespace
}  // namespace approx::cluster
