// Placement policies and deployment-level recovery aggregation.
#include <gtest/gtest.h>

#include <set>

#include "cluster/deployment.h"
#include "codes/rs_code.h"

namespace approx::cluster {
namespace {

TEST(Placement, ClusteredIsIdentity) {
  StripePlacement p(PlacementPolicy::Clustered, 8, 8, 100);
  for (int s = 0; s < 100; s += 17) {
    for (int m = 0; m < 8; ++m) EXPECT_EQ(p.node_of(s, m), m);
  }
}

TEST(Placement, ClusteredRequiresExactPool) {
  EXPECT_THROW(StripePlacement(PlacementPolicy::Clustered, 10, 8, 4),
               InvalidArgument);
}

TEST(Placement, DeclusteredUsesTheWholePool) {
  StripePlacement p(PlacementPolicy::Declustered, 20, 8, 200);
  std::set<int> used;
  for (int s = 0; s < 200; ++s) {
    for (int m = 0; m < 8; ++m) used.insert(p.node_of(s, m));
  }
  EXPECT_EQ(used.size(), 20u);
}

TEST(Placement, MembersWithinAStripeAreDistinctNodes) {
  for (const auto policy :
       {PlacementPolicy::Declustered, PlacementPolicy::RackAware}) {
    StripePlacement p(policy, 24, 8, 150, policy == PlacementPolicy::RackAware ? 8 : 1);
    for (int s = 0; s < 150; ++s) {
      std::set<int> nodes;
      for (int m = 0; m < 8; ++m) nodes.insert(p.node_of(s, m));
      EXPECT_EQ(nodes.size(), 8u) << placement_name(policy) << " stripe " << s;
    }
  }
}

TEST(Placement, RackAwareSpreadsAcrossRacks) {
  StripePlacement p(PlacementPolicy::RackAware, 24, 6, 120, 8);
  EXPECT_TRUE(p.rack_disjoint());
}

TEST(Placement, RackAwareNeedsEnoughRacks) {
  EXPECT_THROW(StripePlacement(PlacementPolicy::RackAware, 24, 8, 10, 4),
               InvalidArgument);
}

TEST(Placement, MembersOnIsConsistentWithNodeOf) {
  StripePlacement p(PlacementPolicy::Declustered, 12, 5, 60);
  int total = 0;
  for (int n = 0; n < 12; ++n) {
    for (const auto& [s, m] : p.members_on(n)) {
      EXPECT_EQ(p.node_of(s, m), n);
      ++total;
    }
  }
  EXPECT_EQ(total, 60 * 5);
}

TEST(Placement, DeclusteredBalancesLoad) {
  StripePlacement p(PlacementPolicy::Declustered, 16, 8, 400);
  std::vector<int> load(16, 0);
  for (int n = 0; n < 16; ++n) {
    load[static_cast<std::size_t>(n)] = static_cast<int>(p.members_on(n).size());
  }
  const auto [mn, mx] = std::minmax_element(load.begin(), load.end());
  EXPECT_LT(*mx - *mn, *mx / 2) << "declustered load should be roughly even";
}

// ---------------------------------------------------------------------------
// Deployment aggregation
// ---------------------------------------------------------------------------

TEST(Deployment, ClusteredMatchesFlatWorkloadShape) {
  auto rs = codes::make_rs(5, 3);
  const std::size_t member = std::size_t{64} << 20;
  StripePlacement place(PlacementPolicy::Clustered, 8, 8, 16);
  Deployment dep(place, member, base_code_stripe_fn(rs, member));
  const auto w = dep.node_failure_workload(std::vector<int>{0});
  EXPECT_EQ(w.stripes_touched, 16);
  EXPECT_EQ(w.stripes_unrecoverable, 0);
  // Every stripe reads the same 5 surviving nodes: 5 read entries total.
  EXPECT_EQ(w.workload.reads.size(), 5u);
  // Failed node is rebuilt with its full volume (16 stripes x member).
  ASSERT_EQ(w.workload.writes.size(), 1u);
  EXPECT_EQ(w.workload.writes[0].second, 16 * member);
}

TEST(Deployment, DeclusteredSpreadsRebuildReads) {
  auto rs = codes::make_rs(5, 3);
  const std::size_t member = std::size_t{64} << 20;
  // Equal per-node volume: the 8-node clustered pool stores 32 members per
  // node; the 32-node declustered pool needs 4x the stripes for the same.
  StripePlacement clustered(PlacementPolicy::Clustered, 8, 8, 32);
  StripePlacement declustered(PlacementPolicy::Declustered, 32, 8, 128);
  Deployment dc(clustered, member, base_code_stripe_fn(rs, member));
  Deployment dd(declustered, member, base_code_stripe_fn(rs, member));
  const auto wc = dc.node_failure_workload(std::vector<int>{0});
  const auto wd = dd.node_failure_workload(std::vector<int>{0});
  // Same data volume rebuilt...
  EXPECT_EQ(wc.workload.total_written(), wd.workload.total_written());
  // ...but read from many more disks.
  EXPECT_GT(wd.workload.reads.size(), wc.workload.reads.size() * 2);
  // And the recovery completes faster on the event model.
  ClusterConfig cfg;
  const double tc = simulate_recovery(wc.workload, cfg).seconds;
  const double td = simulate_recovery(wd.workload, cfg).seconds;
  EXPECT_LT(td, tc);
}

TEST(Deployment, UnrecoverableStripesAreCountedNotRead) {
  auto rs = codes::make_rs(4, 1);  // single-fault tolerant
  const std::size_t member = 1 << 20;
  StripePlacement place(PlacementPolicy::Clustered, 5, 5, 10);
  Deployment dep(place, member, base_code_stripe_fn(rs, member));
  const auto w = dep.node_failure_workload(std::vector<int>{0, 1});
  EXPECT_EQ(w.stripes_touched, 10);
  EXPECT_EQ(w.stripes_unrecoverable, 10);
  EXPECT_TRUE(w.workload.reads.empty());
}

TEST(Deployment, ApprAdapterSkipsUnimportantVolume) {
  const core::ApprParams params{codes::Family::RS, 4, 1, 2, 4,
                                core::Structure::Even};
  auto appr = std::make_shared<core::ApproximateCode>(params, 4096);
  const std::size_t member = std::size_t{64} << 20;
  const auto fn = appr_code_stripe_fn(appr, member);
  // Double failure in one local stripe: only the important fraction moves.
  const auto io = fn(std::vector<int>{0, 1});
  ASSERT_TRUE(io.has_value());
  std::size_t written = 0;
  for (const auto& [m, b] : io->member_writes) written += b;
  EXPECT_EQ(written, 2 * member / 4);  // 1/h of each failed node
}

TEST(Deployment, DeclusteredSpreadsRebuildWrites) {
  // Spare-capacity declustering: rebuilt data lands on many healthy nodes
  // instead of one replacement disk.
  auto rs = codes::make_rs(5, 3);
  const std::size_t member = 1 << 20;
  StripePlacement place(PlacementPolicy::Declustered, 32, 8, 128);
  Deployment dep(place, member, base_code_stripe_fn(rs, member));
  const auto w = dep.node_failure_workload(std::vector<int>{0});
  EXPECT_GT(w.workload.writes.size(), 4u);
  for (const auto& [node, bytes] : w.workload.writes) {
    EXPECT_NE(node, 0) << "rebuilt data must avoid the failed node";
    (void)bytes;
  }
}

TEST(Deployment, MultiNodeFailureAggregates) {
  auto rs = codes::make_rs(5, 3);
  const std::size_t member = 1 << 20;
  StripePlacement place(PlacementPolicy::Declustered, 24, 8, 48);
  Deployment dep(place, member, base_code_stripe_fn(rs, member));
  const auto w1 = dep.node_failure_workload(std::vector<int>{3});
  const auto w2 = dep.node_failure_workload(std::vector<int>{3, 11});
  EXPECT_GE(w2.stripes_touched, w1.stripes_touched);
  EXPECT_GT(w2.workload.total_written(), w1.workload.total_written());
}

}  // namespace
}  // namespace approx::cluster
