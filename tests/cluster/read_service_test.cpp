// Degraded-read service: latency model sanity, path builders, availability
// semantics of the two tiers.
#include <gtest/gtest.h>

#include "cluster/read_service.h"
#include "codes/lrc_code.h"
#include "codes/rs_code.h"

namespace approx::cluster {
namespace {

ClusterConfig quiet_config() {
  ClusterConfig c;
  c.disk_latency = 0.001;
  c.nic_latency = 1e-4;
  return c;
}

ReadRequestModel light_load() {
  ReadRequestModel m;
  m.arrival_rate = 20.0;  // well below saturation
  m.requests = 400;
  m.request_bytes = 1 << 20;
  return m;
}

TEST(ReadPaths, HealthyBaseCodeIsDirect) {
  auto rs = codes::make_rs(6, 3);
  const auto paths = base_code_read_paths(*rs, {});
  ASSERT_EQ(paths.size(), 6u);
  for (int d = 0; d < 6; ++d) {
    const auto& p = paths[static_cast<std::size_t>(d)];
    EXPECT_TRUE(p.available);
    ASSERT_EQ(p.sources.size(), 1u);
    EXPECT_EQ(p.sources[0].first, d);
    EXPECT_DOUBLE_EQ(p.sources[0].second, 1.0);
    EXPECT_DOUBLE_EQ(p.compute_per_byte, 0.0);
  }
}

TEST(ReadPaths, FailedNodeDecodesFromKSources) {
  auto rs = codes::make_rs(6, 3);
  const auto paths = base_code_read_paths(*rs, std::vector<int>{2});
  const auto& p = paths[2];
  EXPECT_TRUE(p.available);
  EXPECT_EQ(p.sources.size(), 6u);  // k survivors
  EXPECT_GT(p.compute_per_byte, 5.0);
  // Other nodes stay direct.
  EXPECT_EQ(paths[0].sources.size(), 1u);
}

TEST(ReadPaths, LrcDegradedReadStaysLocal) {
  auto lrc = codes::make_lrc(8, 4, 2);  // groups of 2
  const auto paths = base_code_read_paths(*lrc, std::vector<int>{0});
  EXPECT_LE(paths[0].sources.size(), 2u);  // group partner + local parity
}

TEST(ReadPaths, BeyondToleranceIsUnavailable) {
  auto rs = codes::make_rs(4, 1);
  const auto paths = base_code_read_paths(*rs, std::vector<int>{0, 1});
  EXPECT_FALSE(paths[0].available);
  EXPECT_FALSE(paths[1].available);
  EXPECT_TRUE(paths[2].available);
}

TEST(ReadPaths, ApprImportantTierSurvivesTripleFailure) {
  core::ApprParams params{codes::Family::RS, 4, 1, 2, 4, core::Structure::Even};
  core::ApproximateCode code(params, 4096);
  const std::vector<int> erased = {0, 1, 2};  // one whole stripe's data... 3 of 4
  const auto paths = appr_read_paths(code, erased);
  ASSERT_EQ(paths.size(), 16u);  // h*k data nodes
  for (const auto& p : paths) EXPECT_TRUE(p.available);
  // Failed nodes decode through the virtual stripe (locals + globals).
  EXPECT_GT(paths[0].sources.size(), 1u);
}

TEST(ReadService, DegradedLatencyExceedsHealthy) {
  auto rs = codes::make_rs(6, 3);
  const auto cfg = quiet_config();
  const auto model = light_load();
  const auto healthy =
      simulate_read_service(base_code_read_paths(*rs, {}), rs->total_nodes(),
                            model, cfg);
  const auto degraded =
      simulate_read_service(base_code_read_paths(*rs, std::vector<int>{0}),
                            rs->total_nodes(), model, cfg);
  EXPECT_EQ(healthy.served, model.requests);
  EXPECT_GT(degraded.mean_ms, healthy.mean_ms);
  EXPECT_GT(degraded.p99_ms, healthy.p99_ms);
  EXPECT_GE(degraded.p99_ms, degraded.p50_ms);
}

TEST(ReadService, SaturationRaisesLatency) {
  auto rs = codes::make_rs(6, 3);
  const auto cfg = quiet_config();
  auto light = light_load();
  auto heavy = light;
  heavy.arrival_rate = 2000.0;
  const auto paths = base_code_read_paths(*rs, std::vector<int>{0});
  const auto l = simulate_read_service(paths, rs->total_nodes(), light, cfg);
  const auto h = simulate_read_service(paths, rs->total_nodes(), heavy, cfg);
  EXPECT_GT(h.mean_ms, l.mean_ms);
}

TEST(ReadService, Deterministic) {
  auto rs = codes::make_rs(5, 2);
  const auto paths = base_code_read_paths(*rs, std::vector<int>{1});
  const auto a = simulate_read_service(paths, rs->total_nodes(), light_load(),
                                       quiet_config());
  const auto b = simulate_read_service(paths, rs->total_nodes(), light_load(),
                                       quiet_config());
  EXPECT_DOUBLE_EQ(a.mean_ms, b.mean_ms);
  EXPECT_DOUBLE_EQ(a.p99_ms, b.p99_ms);
}

TEST(ReadService, UnavailablePathsAreCounted) {
  auto rs = codes::make_rs(4, 1);
  const auto paths = base_code_read_paths(*rs, std::vector<int>{0, 1});
  const auto stats = simulate_read_service(paths, rs->total_nodes(), light_load(),
                                           quiet_config());
  EXPECT_GT(stats.unavailable, 0);
  EXPECT_EQ(stats.served + stats.unavailable, light_load().requests);
}

}  // namespace
}  // namespace approx::cluster
