// Simulator event-timeline tests: a TimelineSink attached to
// simulate_recovery must account for exactly the service time the
// FifoResources report, on a workload small enough to trace by hand.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "cluster/recovery.h"
#include "cluster/sim.h"
#include "obs/timeline.h"

namespace approx::cluster {
namespace {

constexpr std::size_t kMB = 1'000'000;  // 1 MB = 1e6 bytes

// A 3-node workload with round service times:
//   - node1 reads 100 MB, node2 reads 200 MB (disks at 100 MB/s),
//   - both ship to the aggregator node0 over 200 MB/s NICs,
//   - the CPU decodes 400 MB at 400 MB/s,
//   - node0 writes 100 MB locally (disk at 100 MB/s).
// One pipeline task (task_bytes is huge), zero latencies.  The hand-traced
// timeline:
//   node1.disk_read  [0, 1]   node2.disk_read  [0, 2]
//   node1.nic_out    [1, 1.5] node2.nic_out    [2, 3]
//   node0.nic_in     [1.5, 2] and [3, 4]
//   cpu              [4, 5]
//   node0.disk_write [5, 6]   -> completion 6 s
ClusterConfig hand_config() {
  ClusterConfig cfg;
  cfg.disk_read_bw = 100.0 * static_cast<double>(kMB);
  cfg.disk_write_bw = 100.0 * static_cast<double>(kMB);
  cfg.disk_latency = 0;
  cfg.nic_bw = 200.0 * static_cast<double>(kMB);
  cfg.nic_latency = 0;
  cfg.coding_bw = 400.0 * static_cast<double>(kMB);
  cfg.task_bytes = std::size_t{1} << 40;  // single pipeline task
  return cfg;
}

RecoveryWorkload hand_workload() {
  RecoveryWorkload w;
  w.nodes = 3;
  w.reads = {{1, 100 * kMB}, {2, 200 * kMB}};
  w.writes = {{0, 100 * kMB}};
  w.compute_bytes = 400 * kMB;
  return w;
}

TEST(Timeline, SinkBusyIntervalsMatchServiceTimes) {
  obs::TimelineSink sink;
  const RecoveryResult result =
      simulate_recovery(hand_workload(), hand_config(), &sink);

  EXPECT_DOUBLE_EQ(result.seconds, 6.0);
  EXPECT_DOUBLE_EQ(result.read_seconds, 2.0);     // node2.disk_read
  EXPECT_DOUBLE_EQ(result.network_seconds, 1.5);  // node0.nic_in, both arrivals
  EXPECT_DOUBLE_EQ(result.compute_seconds, 1.0);

  // The timeline horizon is the completion time.
  EXPECT_DOUBLE_EQ(sink.horizon(), 6.0);

  // Sum the sink's busy intervals per resource and compare against the
  // resources' own accounting.
  std::map<std::string, double> busy;
  std::map<std::string, std::size_t> bytes;
  for (const auto& iv : sink.intervals()) {
    EXPECT_LE(iv.start, iv.finish);
    busy[sink.resource_name(iv.resource)] += iv.finish - iv.start;
    bytes[sink.resource_name(iv.resource)] += iv.bytes;
  }
  EXPECT_DOUBLE_EQ(busy.at("node1.disk_read"), 1.0);
  EXPECT_DOUBLE_EQ(busy.at("node2.disk_read"), 2.0);
  EXPECT_DOUBLE_EQ(busy.at("node1.nic_out"), 0.5);
  EXPECT_DOUBLE_EQ(busy.at("node2.nic_out"), 1.0);
  EXPECT_DOUBLE_EQ(busy.at("node0.nic_in"), 1.5);
  EXPECT_DOUBLE_EQ(busy.at("cpu"), 1.0);
  EXPECT_DOUBLE_EQ(busy.at("node0.disk_write"), 1.0);
  EXPECT_EQ(busy.size(), 7u);  // no other resource did work

  EXPECT_EQ(bytes.at("node0.nic_in"), 300 * kMB);
  EXPECT_EQ(bytes.at("cpu"), 400 * kMB);

  // The per-resource breakdown in the result agrees with the sink, entry
  // for entry, and is sorted busiest-first.
  ASSERT_EQ(result.resources.size(), 7u);
  for (const auto& u : result.resources) {
    EXPECT_DOUBLE_EQ(u.busy_seconds, busy.at(u.name));
    EXPECT_EQ(u.bytes, bytes.at(u.name));
    EXPECT_DOUBLE_EQ(u.utilization, u.busy_seconds / 6.0);
  }
  for (std::size_t i = 1; i < result.resources.size(); ++i) {
    EXPECT_GE(result.resources[i - 1].busy_seconds,
              result.resources[i].busy_seconds);
  }
  EXPECT_EQ(result.critical_resource, "node2.disk_read");
  EXPECT_EQ(result.resources.front().name, "node2.disk_read");

  // node0.nic_in serviced two arrivals back to back, never concurrently.
  int nic_in_id = -1;
  for (int id = 0; id < sink.resource_count(); ++id) {
    if (sink.resource_name(id) == "node0.nic_in") nic_in_id = id;
  }
  ASSERT_GE(nic_in_id, 0);
  EXPECT_EQ(sink.max_queue_depth(nic_in_id), 1u);
  EXPECT_DOUBLE_EQ(sink.busy_seconds(nic_in_id), 1.5);
  EXPECT_EQ(sink.bytes(nic_in_id), 300 * kMB);
}

TEST(Timeline, UntracedRunMatchesTracedRun) {
  obs::TimelineSink sink;
  const RecoveryResult traced =
      simulate_recovery(hand_workload(), hand_config(), &sink);
  const RecoveryResult plain = simulate_recovery(hand_workload(), hand_config());

  EXPECT_DOUBLE_EQ(plain.seconds, traced.seconds);
  EXPECT_DOUBLE_EQ(plain.read_seconds, traced.read_seconds);
  EXPECT_DOUBLE_EQ(plain.network_seconds, traced.network_seconds);
  EXPECT_DOUBLE_EQ(plain.compute_seconds, traced.compute_seconds);
  ASSERT_EQ(plain.resources.size(), traced.resources.size());
  for (std::size_t i = 0; i < plain.resources.size(); ++i) {
    EXPECT_EQ(plain.resources[i].name, traced.resources[i].name);
    EXPECT_DOUBLE_EQ(plain.resources[i].busy_seconds,
                     traced.resources[i].busy_seconds);
    // Queue depths are only known on traced runs.
    EXPECT_EQ(plain.resources[i].max_queue_depth, 0u);
  }
  EXPECT_EQ(plain.critical_resource, "node2.disk_read");
}

TEST(Timeline, QueueDepthCountsOverlappingSubmissions) {
  // Pipelined tasks make several read requests queue on one disk: with
  // 4 tasks of 25 MB each submitted at t=0, the disk serves them FIFO and
  // the last submission sees 4 outstanding requests.
  ClusterConfig cfg = hand_config();
  cfg.task_bytes = 25 * kMB;
  RecoveryWorkload w;
  w.nodes = 2;
  w.reads = {{1, 100 * kMB}};
  w.writes = {{0, 100 * kMB}};
  w.compute_bytes = 100 * kMB;

  obs::TimelineSink sink;
  const RecoveryResult result = simulate_recovery(w, cfg, &sink);
  int disk_id = -1;
  for (int id = 0; id < sink.resource_count(); ++id) {
    if (sink.resource_name(id) == "node1.disk_read") disk_id = id;
  }
  ASSERT_GE(disk_id, 0);
  EXPECT_EQ(sink.max_queue_depth(disk_id), 4u);
  EXPECT_DOUBLE_EQ(sink.busy_seconds(disk_id), 1.0);
  for (const auto& u : result.resources) {
    if (u.name == "node1.disk_read") {
      EXPECT_EQ(u.max_queue_depth, 4u);
    }
  }
}

TEST(Timeline, SinkClearResets) {
  obs::TimelineSink sink;
  simulate_recovery(hand_workload(), hand_config(), &sink);
  ASSERT_GT(sink.intervals().size(), 0u);
  const int resources_before = sink.resource_count();
  sink.clear();
  EXPECT_TRUE(sink.intervals().empty());
  EXPECT_DOUBLE_EQ(sink.horizon(), 0.0);
  // Registrations survive a clear; aggregates are zeroed.
  EXPECT_EQ(sink.resource_count(), resources_before);
  for (int id = 0; id < sink.resource_count(); ++id) {
    EXPECT_DOUBLE_EQ(sink.busy_seconds(id), 0.0);
    EXPECT_EQ(sink.bytes(id), 0u);
  }
}

}  // namespace
}  // namespace approx::cluster
