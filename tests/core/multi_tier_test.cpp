// Multi-tier unequal protection (the N-level generalization of the
// framework): geometry, per-tier tolerance semantics, and the 3-tier
// I/P/B video mapping.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/prng.h"
#include "core/multi_tier_code.h"

namespace approx::core {
namespace {

using codes::Family;

MultiTierParams three_tier(Family family = Family::RS, int k = 4, int h = 4) {
  MultiTierParams p;
  p.family = family;
  p.k = k;
  p.r = 1;
  p.h = h;
  p.frac_den = 8;
  // I frames: 1/8 at triple protection; P: 1/8 at double; B: 6/8 local only.
  p.tiers = {{3, 1}, {2, 1}, {1, 6}};
  return p;
}

struct Fixture {
  explicit Fixture(const MultiTierParams& p, std::size_t block = 64)
      : code(p, block), buffers(code.total_nodes(), code.node_bytes()) {
    Rng rng(4);
    for (int t = 0; t < code.tier_count(); ++t) {
      streams.emplace_back(code.tier_capacity(t));
      fill_random(streams.back().data(), streams.back().size(), rng);
    }
    std::vector<std::span<const std::uint8_t>> views(streams.begin(), streams.end());
    auto spans = buffers.spans();
    code.scatter(views, spans);
    code.encode(spans);
    for (int n = 0; n < code.total_nodes(); ++n) {
      snapshot.emplace_back(buffers.node(n).begin(), buffers.node(n).end());
    }
  }

  MultiTierCode::RepairReport wipe_and_repair(const std::vector<int>& erased) {
    for (const int e : erased) buffers.clear_node(e);
    auto spans = buffers.spans();
    return code.repair(spans, erased);
  }

  bool tier_matches(int t) {
    std::vector<std::vector<std::uint8_t>> out;
    for (int i = 0; i < code.tier_count(); ++i) {
      out.emplace_back(code.tier_capacity(i));
    }
    std::vector<std::span<std::uint8_t>> views(out.begin(), out.end());
    auto spans = buffers.spans();
    code.gather(spans, views);
    return out[static_cast<std::size_t>(t)] == streams[static_cast<std::size_t>(t)];
  }

  bool node_matches(int n) {
    return std::equal(buffers.node(n).begin(), buffers.node(n).end(),
                      snapshot[static_cast<std::size_t>(n)].begin());
  }

  MultiTierCode code;
  StripeBuffers buffers;
  std::vector<std::vector<std::uint8_t>> streams;
  std::vector<std::vector<std::uint8_t>> snapshot;
};

TEST(MultiTierParams, Validation) {
  auto p = three_tier();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.global_levels(), 2);
  EXPECT_EQ(p.total_nodes(), 4 * 5 + 2);
  EXPECT_EQ(p.covered_num(1), 2);  // tiers 0+1 have > 1 level
  EXPECT_EQ(p.covered_num(2), 1);  // only tier 0 has > 2 levels

  auto bad = p;
  bad.tiers[2].levels = 2;  // last tier must equal r
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = p;
  bad.tiers = {{2, 4}, {3, 4}};  // increasing protection order
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = p;
  bad.tiers[0].frac_num = 2;  // fractions no longer sum to den
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = p;
  bad.tiers = {{3, 4}, {1, 4}};
  bad.frac_den = 8;
  bad.h = 4;  // covered fraction 1/2 at level 1 needs h <= 2
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(MultiTier, ScatterGatherRoundtrip) {
  Fixture fx(three_tier());
  for (int t = 0; t < 3; ++t) EXPECT_TRUE(fx.tier_matches(t));
}

TEST(MultiTier, CapacitiesPartitionTheDataVolume) {
  Fixture fx(three_tier());
  std::size_t total = 0;
  for (int t = 0; t < 3; ++t) total += fx.code.tier_capacity(t);
  EXPECT_EQ(total, static_cast<std::size_t>(4 * 4) * fx.code.node_bytes());
}

TEST(MultiTier, SingleFailureRepairsEverything) {
  Fixture fx(three_tier());
  auto report = fx.wipe_and_repair({0});
  EXPECT_TRUE(report.fully_recovered);
  for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
}

TEST(MultiTier, DoubleFailureKeepsTiers0And1) {
  Fixture fx(three_tier());
  auto report = fx.wipe_and_repair({0, 1});  // same stripe, beyond r=1
  EXPECT_FALSE(report.fully_recovered);
  EXPECT_TRUE(report.tier_recovered[0]);
  EXPECT_TRUE(report.tier_recovered[1]);
  EXPECT_FALSE(report.tier_recovered[2]);
  EXPECT_GT(report.tier_bytes_lost[2], 0u);
  EXPECT_EQ(report.tier_bytes_lost[0], 0u);
  EXPECT_TRUE(fx.tier_matches(0));
  EXPECT_TRUE(fx.tier_matches(1));
}

TEST(MultiTier, TripleFailureKeepsOnlyTier0) {
  Fixture fx(three_tier());
  auto report = fx.wipe_and_repair({0, 1, 2});
  EXPECT_TRUE(report.tier_recovered[0]);
  EXPECT_FALSE(report.tier_recovered[1]);
  EXPECT_FALSE(report.tier_recovered[2]);
  EXPECT_TRUE(fx.tier_matches(0));
}

TEST(MultiTier, FailuresAcrossStripesRepairLocally) {
  Fixture fx(three_tier());
  auto report = fx.wipe_and_repair({0, 5, 10, 15});  // one per stripe
  EXPECT_TRUE(report.fully_recovered);
  for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
}

TEST(MultiTier, GlobalNodeFailureIsReencoded) {
  Fixture fx(three_tier());
  const int g0 = fx.code.total_nodes() - 2;
  const int g1 = fx.code.total_nodes() - 1;
  auto report = fx.wipe_and_repair({g0, g1});
  EXPECT_TRUE(report.fully_recovered);
  EXPECT_TRUE(fx.node_matches(g0));
  EXPECT_TRUE(fx.node_matches(g1));
}

TEST(MultiTier, MixedDataAndGlobalFailure) {
  Fixture fx(three_tier());
  const int g1 = fx.code.total_nodes() - 1;  // deepest-level global
  auto report = fx.wipe_and_repair({0, 1, g1});
  // Tier 0 needs level-2 parity, which just failed alongside 2 data nodes:
  // the virtual stripe sees 3 failures against 3 parity rows.
  EXPECT_TRUE(report.tier_recovered[0]);
  EXPECT_TRUE(report.tier_recovered[1]);
  EXPECT_FALSE(report.tier_recovered[2]);
  EXPECT_TRUE(fx.tier_matches(0));
  EXPECT_TRUE(fx.tier_matches(1));
}

TEST(MultiTier, WorksWithArrayCodeFamilies) {
  auto p = three_tier(Family::STAR, 5, 4);
  Fixture fx(p, 64);
  auto report = fx.wipe_and_repair({0, 1});
  EXPECT_TRUE(report.tier_recovered[0]);
  EXPECT_TRUE(report.tier_recovered[1]);
  EXPECT_TRUE(fx.tier_matches(0));
  EXPECT_TRUE(fx.tier_matches(1));
}

TEST(MultiTier, TwoTierConfigMatchesApprSemantics) {
  // A two-tier MultiTierCode with fractions {1/h, (h-1)/h} is exactly the
  // paper's APPR(k,1,2,h,Even).
  MultiTierParams p;
  p.family = Family::RS;
  p.k = 4;
  p.r = 1;
  p.h = 4;
  p.frac_den = 4;
  p.tiers = {{3, 1}, {1, 3}};
  Fixture fx(p, 64);
  auto report = fx.wipe_and_repair({0, 1, 2});
  EXPECT_TRUE(report.tier_recovered[0]);
  EXPECT_FALSE(report.tier_recovered[1]);
  EXPECT_TRUE(fx.tier_matches(0));
}

}  // namespace
}  // namespace approx::core
