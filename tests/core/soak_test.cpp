// Randomized soak test: a long interleaved sequence of updates, failures,
// repairs, degraded reads and scrubs against a shadow model of the logical
// streams.  Catches state-machine interactions no single-operation test
// exercises.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/prng.h"
#include "core/approximate_code.h"

namespace approx::core {
namespace {

using codes::Family;

struct Soak {
  explicit Soak(const ApprParams& p, std::uint64_t seed)
      : code(p, 96),
        buffers(code.total_nodes(), code.node_bytes()),
        important(code.important_capacity()),
        unimportant(code.unimportant_capacity()),
        unimportant_valid(code.unimportant_capacity(), true),
        rng(seed) {
    fill_random(important.data(), important.size(), rng);
    fill_random(unimportant.data(), unimportant.size(), rng);
    auto spans = buffers.spans();
    code.scatter(important, unimportant, spans);
    code.encode(spans);
  }

  // Shadow model: `important` always reflects truth; bytes of `unimportant`
  // may be invalidated (zeroed) by beyond-tolerance failures.
  ApproximateCode code;
  StripeBuffers buffers;
  std::vector<std::uint8_t> important;
  std::vector<std::uint8_t> unimportant;
  std::vector<bool> unimportant_valid;
  Rng rng;
  std::vector<int> down;  // currently failed nodes

  void op_update_important() {
    if (!down.empty()) return;  // updates only on a healthy array
    const std::size_t cap = code.important_capacity();
    const std::size_t off = rng.below(cap);
    const std::size_t len = 1 + rng.below(std::min<std::uint64_t>(cap - off, 150));
    std::vector<std::uint8_t> fresh(len);
    fill_random(fresh.data(), len, rng);
    std::copy(fresh.begin(), fresh.end(), important.begin() + static_cast<long>(off));
    auto spans = buffers.spans();
    code.update_important(spans, off, fresh);
  }

  void op_update_unimportant() {
    if (!down.empty()) return;
    const std::size_t cap = code.unimportant_capacity();
    const std::size_t off = rng.below(cap);
    const std::size_t len = 1 + rng.below(std::min<std::uint64_t>(cap - off, 150));
    std::vector<std::uint8_t> fresh(len);
    fill_random(fresh.data(), len, rng);
    for (std::size_t i = 0; i < len; ++i) {
      unimportant[off + i] = fresh[i];
      unimportant_valid[off + i] = true;
    }
    auto spans = buffers.spans();
    code.update_unimportant(spans, off, fresh);
  }

  void op_fail() {
    if (down.size() >= 3) return;
    const int n = static_cast<int>(rng.below(static_cast<std::uint64_t>(code.total_nodes())));
    if (std::find(down.begin(), down.end(), n) != down.end()) return;
    down.push_back(n);
    buffers.clear_node(n);
  }

  void op_repair() {
    if (down.empty()) return;
    auto spans = buffers.spans();
    // A long-lived mutable volume must repair in the self-consistent mode:
    // stale parity over zero-filled holes would corrupt later updates.
    ApproximateCode::RepairOptions options;
    options.normalize_parity = true;
    const auto report = code.repair(spans, down, options);
    ASSERT_TRUE(report.all_important_recovered)
        << "3DFT violated with " << down.size() << " failures";
    // Invalidate the shadow bytes the repair could not restore.
    for (const auto& so : report.stripes) {
      const bool lost_unimportant =
          so.kind == StripeOutcome::Kind::ImportantOnlyRepair ||
          so.kind == StripeOutcome::Kind::Unrecoverable;
      if (!lost_unimportant) continue;
      for (const int node : so.failed_members) {
        const auto range = code.node_unimportant_range(node);
        for (std::size_t i = 0; i < range.len; ++i) {
          unimportant[range.offset + i] = 0;  // holes come back zeroed
          unimportant_valid[range.offset + i] = false;
        }
      }
    }
    down.clear();
  }

  void op_degraded_read() {
    const std::size_t cap = code.important_capacity();
    const std::size_t off = rng.below(cap);
    const std::size_t len = 1 + rng.below(std::min<std::uint64_t>(cap - off, 200));
    std::vector<std::uint8_t> out(len);
    auto spans = buffers.spans();
    const auto r = code.degraded_read_important(spans, down, off, out);
    ASSERT_TRUE(r.ok);
    ASSERT_TRUE(std::equal(out.begin(), out.end(),
                           important.begin() + static_cast<long>(off)))
        << "degraded important read diverged at offset " << off;
  }

  void verify_final() {
    op_repair();
    std::vector<std::uint8_t> imp(code.important_capacity());
    std::vector<std::uint8_t> unimp(code.unimportant_capacity());
    auto spans = buffers.spans();
    code.gather(spans, imp, unimp);
    ASSERT_EQ(imp, important);
    for (std::size_t i = 0; i < unimp.size(); ++i) {
      if (unimportant_valid[i]) {
        ASSERT_EQ(unimp[i], unimportant[i]) << "unimportant byte " << i;
      }
    }
  }

  void run(int ops) {
    for (int i = 0; i < ops; ++i) {
      switch (rng.below(6)) {
        case 0:
          op_update_important();
          break;
        case 1:
          op_update_unimportant();
          break;
        case 2:
        case 3:
          op_fail();
          break;
        case 4:
          op_repair();
          break;
        case 5:
          op_degraded_read();
          break;
      }
      if (testing::Test::HasFatalFailure()) return;
    }
    verify_final();
  }
};

struct Config {
  Family family;
  int k, r, g, h;
  Structure structure;
  std::uint64_t seed;
};

class SoakTest : public testing::TestWithParam<Config> {};

TEST_P(SoakTest, LongRandomOperationSequence) {
  const Config& c = GetParam();
  Soak soak(ApprParams{c.family, c.k, c.r, c.g, c.h, c.structure}, c.seed);
  soak.run(300);
}

const Config kConfigs[] = {
    {Family::RS, 4, 1, 2, 4, Structure::Even, 1},
    {Family::RS, 4, 1, 2, 4, Structure::Even, 2},
    {Family::RS, 5, 2, 1, 3, Structure::Even, 3},
    {Family::STAR, 5, 1, 2, 4, Structure::Even, 4},
    {Family::TIP, 5, 1, 2, 6, Structure::Even, 5},
    {Family::CRS, 4, 1, 2, 4, Structure::Even, 6},
    {Family::LRC, 6, 1, 2, 4, Structure::Even, 7},
    {Family::RS, 4, 1, 2, 4, Structure::Uneven, 8},
    {Family::STAR, 5, 1, 2, 4, Structure::Uneven, 9},
};

std::string soak_name(const testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return codes::family_name(c.family) + "_k" + std::to_string(c.k) + "_r" +
         std::to_string(c.r) + "_seed" + std::to_string(c.seed);
}

INSTANTIATE_TEST_SUITE_P(Families, SoakTest, testing::ValuesIn(kConfigs), soak_name);

}  // namespace
}  // namespace approx::core
