// ApprParams layout helpers and the analytic metrics against the paper's
// closed forms (Table 3).
#include <gtest/gtest.h>

#include "core/metrics.h"

namespace approx::core {
namespace {

using codes::Family;

TEST(ApprParams, Validation) {
  ApprParams ok{Family::RS, 4, 1, 2, 4, Structure::Even};
  EXPECT_NO_THROW(ok.validate());

  ApprParams bad = ok;
  bad.r = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.r = 2;
  bad.g = 2;  // r+g > 3
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.family = Family::STAR;
  bad.k = 9;  // not prime
  EXPECT_THROW(bad.validate(), InvalidArgument);
  bad = ok;
  bad.h = 0;
  EXPECT_THROW(bad.validate(), InvalidArgument);
}

TEST(ApprParams, NodeCountsAndName) {
  ApprParams p{Family::STAR, 5, 2, 1, 4, Structure::Uneven};
  EXPECT_EQ(p.nodes_per_stripe(), 7);
  EXPECT_EQ(p.total_nodes(), 29);
  EXPECT_EQ(p.total_data_nodes(), 20);
  EXPECT_EQ(p.total_parity_nodes(), 9);
  EXPECT_EQ(p.name(), "APPR.STAR(5,2,1,4,Uneven)");
}

TEST(ApprParams, RoleMappingRoundtrip) {
  ApprParams p{Family::RS, 3, 2, 1, 3, Structure::Even};
  // Walk every node and verify the role helpers agree.
  int data = 0, local = 0, global = 0;
  for (int n = 0; n < p.total_nodes(); ++n) {
    const auto role = node_role(p, n);
    switch (role.kind) {
      case NodeRole::Kind::Data:
        EXPECT_EQ(data_node_id(p, role.stripe, role.index), n);
        ++data;
        break;
      case NodeRole::Kind::LocalParity:
        EXPECT_EQ(local_parity_node_id(p, role.stripe, role.index), n);
        ++local;
        break;
      case NodeRole::Kind::GlobalParity:
        EXPECT_EQ(global_parity_node_id(p, role.index), n);
        EXPECT_EQ(role.stripe, -1);
        ++global;
        break;
    }
  }
  EXPECT_EQ(data, 9);
  EXPECT_EQ(local, 6);
  EXPECT_EQ(global, 1);
  EXPECT_THROW(node_role(p, p.total_nodes()), InvalidArgument);
}

TEST(Metrics, StorageOverheadIsGeometry) {
  const ApprParams p{Family::RS, 4, 1, 2, 4, Structure::Even};
  const auto m = appr_metrics(p);
  // N / (h*k) = (4*5 + 2) / 16
  EXPECT_DOUBLE_EQ(m.storage_overhead, 22.0 / 16.0);
  EXPECT_EQ(m.fault_tolerance_important, 3);
  EXPECT_EQ(m.fault_tolerance_unimportant, 1);
}

TEST(Metrics, ApprRsSingleWriteMatchesPaperFormula) {
  for (const int h : {3, 4, 6}) {
    for (const auto& [r, g] : {std::pair{1, 2}, std::pair{2, 1}}) {
      const ApprParams p{Family::RS, 6, r, g, h, Structure::Even};
      EXPECT_NEAR(appr_metrics(p).avg_single_write_cost,
                  paper_single_write_appr_rs(r, g, h), 1e-12)
          << p.name();
    }
  }
}

TEST(Metrics, ApprStarSingleWriteDecomposes) {
  // Generic computation = EVENODD local part + (STAR - EVENODD) / h.
  const int p_prime = 7;
  const ApprParams p{Family::STAR, p_prime, 2, 1, 4, Structure::Even};
  const double evenodd = 4.0 - 2.0 / p_prime;
  const double star = 6.0 - 4.0 / p_prime;
  EXPECT_NEAR(appr_metrics(p).avg_single_write_cost,
              evenodd + (star - evenodd) / 4.0, 1e-12);
}

TEST(Metrics, BaseMetricsAgreeWithPaperRows) {
  EXPECT_DOUBLE_EQ(paper_single_write_rs(9, 3), 4.0);
  EXPECT_DOUBLE_EQ(paper_single_write_lrc(2), 4.0);
  EXPECT_NEAR(paper_single_write_star(7), 6.0 - 4.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(paper_single_write_tip(), 4.0);
  EXPECT_DOUBLE_EQ(paper_single_write_appr_lrc(2, 4), 2.5);
  EXPECT_NEAR(paper_single_write_appr_tip(6), 2.0 + 2.0 / 6.0, 1e-12);
}

TEST(Metrics, CrsFamilyMetricsAreFinite) {
  const ApprParams p{Family::CRS, 6, 1, 2, 4, Structure::Even};
  const auto m = appr_metrics(p);
  EXPECT_GT(m.avg_single_write_cost, 1.0);
  // CRS bit-matrix rows touch several parity elements per update; still
  // bounded by 1 + (r + g) * rows.
  EXPECT_LT(m.avg_single_write_cost, 1.0 + 3.0 * 8.0);
}

}  // namespace
}  // namespace approx::core
