// Degraded reads: byte-exact service of logical-stream reads while nodes
// are down, without mutating stored buffers.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/prng.h"
#include "core/approximate_code.h"

namespace approx::core {
namespace {

using codes::Family;

struct ReadFixture {
  explicit ReadFixture(const ApprParams& p, std::size_t block = 96)
      : code(p, block),
        buffers(code.total_nodes(), code.node_bytes()),
        important(code.important_capacity()),
        unimportant(code.unimportant_capacity()) {
    Rng rng(31 + static_cast<unsigned>(p.k));
    fill_random(important.data(), important.size(), rng);
    fill_random(unimportant.data(), unimportant.size(), rng);
    auto spans = buffers.spans();
    code.scatter(important, unimportant, spans);
    code.encode(spans);
  }

  void wipe(const std::vector<int>& nodes) {
    for (const int n : nodes) buffers.clear_node(n);
  }

  std::vector<std::uint8_t> snapshot() {
    std::vector<std::uint8_t> all;
    for (int n = 0; n < code.total_nodes(); ++n) {
      all.insert(all.end(), buffers.node(n).begin(), buffers.node(n).end());
    }
    return all;
  }

  ApproximateCode code;
  StripeBuffers buffers;
  std::vector<std::uint8_t> important;
  std::vector<std::uint8_t> unimportant;
};

struct Config {
  Family family;
  int k, r, g, h;
  Structure structure;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return codes::family_name(c.family) + "_k" + std::to_string(c.k) + "_r" +
         std::to_string(c.r) + "_g" + std::to_string(c.g) + "_h" +
         std::to_string(c.h) + "_" + structure_name(c.structure);
}

class DegradedReadTest : public testing::TestWithParam<Config> {
 protected:
  ApprParams params() const {
    const Config& c = GetParam();
    return ApprParams{c.family, c.k, c.r, c.g, c.h, c.structure};
  }
};

TEST_P(DegradedReadTest, HealthyReadsAreDirect) {
  ReadFixture fx(params());
  std::vector<std::uint8_t> out(fx.important.size());
  auto spans = fx.buffers.spans();
  const auto r = fx.code.degraded_read_important(spans, {}, 0, out);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.bytes_decoded, 0u);
  EXPECT_EQ(out, fx.important);
}

TEST_P(DegradedReadTest, ImportantReadsSurviveGlobalToleranceFailures) {
  ReadFixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int i = 0; i < p.r + p.g && i < p.k; ++i) erased.push_back(data_node_id(p, 0, i));
  fx.wipe(erased);
  const auto before = fx.snapshot();

  std::vector<std::uint8_t> out(fx.important.size());
  auto spans = fx.buffers.spans();
  const auto r = fx.code.degraded_read_important(spans, erased, 0, out);
  EXPECT_TRUE(r.ok) << fx.code.name();
  EXPECT_EQ(out, fx.important) << fx.code.name();
  EXPECT_GT(r.bytes_decoded, 0u);
  EXPECT_TRUE(r.used_global_repair);
  // The stored buffers were never modified.
  EXPECT_EQ(fx.snapshot(), before);
}

TEST_P(DegradedReadTest, UnimportantReadsSurviveLocalToleranceFailures) {
  ReadFixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int i = 0; i < p.r; ++i) erased.push_back(data_node_id(p, p.h - 1, i));
  fx.wipe(erased);

  std::vector<std::uint8_t> out(fx.unimportant.size());
  auto spans = fx.buffers.spans();
  const auto r = fx.code.degraded_read_unimportant(spans, erased, 0, out);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(out, fx.unimportant);
}

TEST_P(DegradedReadTest, UnimportantReadsFailBeyondLocalTolerance) {
  ReadFixture fx(params());
  const ApprParams p = fx.code.params();
  if (p.r + 1 > p.k) GTEST_SKIP();
  const int victim_stripe = p.structure == Structure::Uneven ? 1 : 0;
  std::vector<int> erased;
  for (int i = 0; i < p.r + 1; ++i) {
    erased.push_back(data_node_id(p, victim_stripe, i));
  }
  fx.wipe(erased);

  std::vector<std::uint8_t> out(fx.unimportant.size());
  auto spans = fx.buffers.spans();
  const auto r = fx.code.degraded_read_unimportant(spans, erased, 0, out);
  EXPECT_FALSE(r.ok);
  // Pieces on healthy nodes are still served correctly.
  EXPECT_GT(r.bytes_direct, 0u);
}

TEST_P(DegradedReadTest, SubRangeReadsAreExact) {
  ReadFixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased = {data_node_id(p, 0, 0)};
  fx.wipe(erased);
  auto spans = fx.buffers.spans();
  Rng rng(17);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t cap = fx.code.important_capacity();
    const std::size_t offset = rng.below(cap - 1);
    const std::size_t len = 1 + rng.below(std::min<std::uint64_t>(cap - offset, 200));
    std::vector<std::uint8_t> out(len);
    const auto r = fx.code.degraded_read_important(spans, erased, offset, out);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(std::equal(out.begin(), out.end(),
                           fx.important.begin() + static_cast<long>(offset)))
        << "offset " << offset << " len " << len;
  }
}

const Config kConfigs[] = {
    {Family::RS, 4, 1, 2, 4, Structure::Even},
    {Family::RS, 4, 1, 2, 4, Structure::Uneven},
    {Family::RS, 5, 2, 1, 3, Structure::Even},
    {Family::LRC, 6, 1, 2, 4, Structure::Even},
    {Family::STAR, 5, 1, 2, 4, Structure::Even},
    {Family::STAR, 5, 1, 2, 4, Structure::Uneven},
    {Family::TIP, 5, 1, 2, 4, Structure::Even},
};

INSTANTIATE_TEST_SUITE_P(AllFamilies, DegradedReadTest, testing::ValuesIn(kConfigs),
                         config_name);

TEST(DegradedRead, GlobalNodeFailureDoesNotAffectDataReads) {
  const ApprParams p{Family::RS, 4, 1, 2, 4, Structure::Even};
  ReadFixture fx(p);
  std::vector<int> erased = {global_parity_node_id(p, 0),
                             global_parity_node_id(p, 1)};
  fx.wipe(erased);
  std::vector<std::uint8_t> out(fx.important.size());
  auto spans = fx.buffers.spans();
  const auto r = fx.code.degraded_read_important(spans, erased, 0, out);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.bytes_decoded, 0u);  // all data nodes are healthy
  EXPECT_EQ(out, fx.important);
}

}  // namespace
}  // namespace approx::core
