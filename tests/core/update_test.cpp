// Incremental update path: patched parities must equal a full re-encode,
// unimportant updates must never touch the globals, and update costs must
// match the analytic single-write model.
#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/prng.h"
#include "core/approximate_code.h"
#include "core/metrics.h"

namespace approx::core {
namespace {

using codes::Family;

struct UpdateFixture {
  explicit UpdateFixture(const ApprParams& p, std::size_t block = 96)
      : code(p, block),
        buffers(code.total_nodes(), code.node_bytes()),
        important(code.important_capacity()),
        unimportant(code.unimportant_capacity()) {
    Rng rng(77);
    fill_random(important.data(), important.size(), rng);
    fill_random(unimportant.data(), unimportant.size(), rng);
    auto spans = buffers.spans();
    code.scatter(important, unimportant, spans);
    code.encode(spans);
  }

  // Re-encode a fresh copy from the logical streams and compare all nodes.
  bool matches_full_reencode() {
    StripeBuffers fresh(code.total_nodes(), code.node_bytes());
    auto spans = fresh.spans();
    code.scatter(important, unimportant, spans);
    code.encode(spans);
    for (int n = 0; n < code.total_nodes(); ++n) {
      if (!std::equal(buffers.node(n).begin(), buffers.node(n).end(),
                      fresh.node(n).begin())) {
        return false;
      }
    }
    return true;
  }

  ApproximateCode code;
  StripeBuffers buffers;
  std::vector<std::uint8_t> important;
  std::vector<std::uint8_t> unimportant;
};

struct Config {
  Family family;
  int k, r, g, h;
  Structure structure;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return codes::family_name(c.family) + "_k" + std::to_string(c.k) + "_r" +
         std::to_string(c.r) + "_g" + std::to_string(c.g) + "_h" +
         std::to_string(c.h) + "_" + structure_name(c.structure);
}

class UpdatePathTest : public testing::TestWithParam<Config> {
 protected:
  ApprParams params() const {
    const Config& c = GetParam();
    return ApprParams{c.family, c.k, c.r, c.g, c.h, c.structure};
  }
};

TEST_P(UpdatePathTest, ImportantUpdateMatchesReencode) {
  UpdateFixture fx(params());
  Rng rng(5);
  // Several updates at awkward offsets and lengths, including piece-
  // boundary crossings.
  const std::size_t cap = fx.code.important_capacity();
  for (const double frac : {0.0, 0.37, 0.61, 0.93}) {
    const std::size_t offset = static_cast<std::size_t>(frac * (cap - 1));
    const std::size_t len = std::min<std::size_t>(cap - offset, 23 + offset % 61);
    std::vector<std::uint8_t> fresh(len);
    fill_random(fresh.data(), len, rng);
    std::copy(fresh.begin(), fresh.end(), fx.important.begin() + static_cast<long>(offset));
    auto spans = fx.buffers.spans();
    auto report = fx.code.update_important(spans, offset, fresh);
    EXPECT_EQ(report.data_bytes_written, len);
    EXPECT_TRUE(report.touched_globals);
  }
  EXPECT_TRUE(fx.matches_full_reencode()) << fx.code.name();
}

TEST_P(UpdatePathTest, UnimportantUpdateMatchesReencode) {
  UpdateFixture fx(params());
  Rng rng(6);
  const std::size_t cap = fx.code.unimportant_capacity();
  for (const double frac : {0.0, 0.5, 0.88}) {
    const std::size_t offset = static_cast<std::size_t>(frac * (cap - 1));
    const std::size_t len = std::min<std::size_t>(cap - offset, 57);
    std::vector<std::uint8_t> fresh(len);
    fill_random(fresh.data(), len, rng);
    std::copy(fresh.begin(), fresh.end(),
              fx.unimportant.begin() + static_cast<long>(offset));
    auto spans = fx.buffers.spans();
    auto report = fx.code.update_unimportant(spans, offset, fresh);
    EXPECT_EQ(report.data_bytes_written, len);
    EXPECT_FALSE(report.touched_globals);
  }
  EXPECT_TRUE(fx.matches_full_reencode()) << fx.code.name();
}

TEST_P(UpdatePathTest, UnimportantUpdateNeverWritesGlobalNodes) {
  UpdateFixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<std::vector<std::uint8_t>> globals_before;
  for (int t = 0; t < p.g; ++t) {
    const int n = global_parity_node_id(p, t);
    globals_before.emplace_back(fx.buffers.node(n).begin(), fx.buffers.node(n).end());
  }
  std::vector<std::uint8_t> fresh(64, 0xAB);
  auto spans = fx.buffers.spans();
  fx.code.update_unimportant(spans, 0, fresh);
  for (int t = 0; t < p.g; ++t) {
    const int n = global_parity_node_id(p, t);
    EXPECT_TRUE(std::equal(fx.buffers.node(n).begin(), fx.buffers.node(n).end(),
                           globals_before[static_cast<std::size_t>(t)].begin()))
        << "global " << t;
  }
}

const Config kConfigs[] = {
    {Family::RS, 4, 1, 2, 4, Structure::Even},
    {Family::RS, 4, 1, 2, 4, Structure::Uneven},
    {Family::RS, 5, 2, 1, 3, Structure::Even},
    {Family::LRC, 6, 1, 2, 4, Structure::Uneven},
    {Family::STAR, 5, 1, 2, 4, Structure::Even},
    {Family::STAR, 5, 2, 1, 4, Structure::Uneven},
    {Family::TIP, 5, 1, 2, 6, Structure::Even},
};

INSTANTIATE_TEST_SUITE_P(AllFamilies, UpdatePathTest, testing::ValuesIn(kConfigs),
                         config_name);

TEST(UpdateCost, MeasuredCostTracksAnalyticModel) {
  // Average measured parity-element touches per single-element update must
  // reproduce the Table 3 value (1 + r + g/h for RS) within rounding.
  const ApprParams p{Family::RS, 5, 1, 2, 4, Structure::Even};
  UpdateFixture fx(p, 96);
  const std::size_t piece = fx.code.block_size() / static_cast<std::size_t>(p.h);
  Rng rng(8);
  // The analytic model weighs updates by data volume (a uniformly random
  // byte write): accumulate element-writes x bytes and divide by bytes.
  double write_volume = 0;
  double data_volume = 0;
  for (std::size_t off = 0; off + piece <= fx.code.important_capacity();
       off += piece) {
    std::vector<std::uint8_t> fresh(piece);
    fill_random(fresh.data(), piece, rng);
    auto spans = fx.buffers.spans();
    const auto r = fx.code.update_important(spans, off, fresh);
    write_volume += static_cast<double>(r.data_bytes_written) +
                    static_cast<double>(r.parity_bytes_written);
    data_volume += static_cast<double>(piece);
  }
  const std::size_t upiece = fx.code.block_size() - piece;
  for (std::size_t off = 0; off + upiece <= fx.code.unimportant_capacity();
       off += upiece) {
    std::vector<std::uint8_t> fresh(upiece);
    fill_random(fresh.data(), upiece, rng);
    auto spans = fx.buffers.spans();
    const auto r = fx.code.update_unimportant(spans, off, fresh);
    write_volume += static_cast<double>(r.data_bytes_written) +
                    static_cast<double>(r.parity_bytes_written);
    data_volume += static_cast<double>(upiece);
  }
  const double measured = write_volume / data_volume;
  const double analytic = appr_metrics(p).avg_single_write_cost;  // 2.5
  EXPECT_NEAR(measured, analytic, 1e-9);
}

TEST(UpdateErrors, OutOfRangeThrows) {
  const ApprParams p{Family::RS, 4, 1, 2, 4, Structure::Even};
  UpdateFixture fx(p);
  std::vector<std::uint8_t> data(10);
  auto spans = fx.buffers.spans();
  EXPECT_THROW(fx.code.update_important(spans, fx.code.important_capacity() - 5, data),
               InvalidArgument);
  EXPECT_THROW(
      fx.code.update_unimportant(spans, fx.code.unimportant_capacity(), data),
      InvalidArgument);
}

}  // namespace
}  // namespace approx::core
