// Scrubbing: silent-corruption detection and localization.
#include <gtest/gtest.h>

#include "codes/array_codes.h"
#include "codes/crs_code.h"
#include "codes/rs_code.h"
#include "common/buffer.h"
#include "common/prng.h"
#include "core/approximate_code.h"

namespace approx::core {
namespace {

using codes::Family;

// ---------------------------------------------------------------------------
// LinearCode-level scrubbing
// ---------------------------------------------------------------------------

struct CodeFixture {
  explicit CodeFixture(std::shared_ptr<const codes::LinearCode> c)
      : code(std::move(c)),
        block(48),
        buffers(code->total_nodes(), block * static_cast<std::size_t>(code->rows())) {
    Rng rng(3);
    for (int d = 0; d < code->data_nodes(); ++d) {
      auto s = buffers.node(d);
      fill_random(s.data(), s.size(), rng);
    }
    auto spans = buffers.spans();
    code->encode_blocks(spans, block);
  }

  std::vector<codes::NodeView> views() {
    std::vector<codes::NodeView> v;
    for (int n = 0; n < code->total_nodes(); ++n) {
      v.push_back(codes::full_view(buffers.node(n), block));
    }
    return v;
  }

  std::shared_ptr<const codes::LinearCode> code;
  std::size_t block;
  StripeBuffers buffers;
};

TEST(Scrub, CleanStripePasses) {
  for (auto code : {codes::make_rs(6, 3), codes::make_star(5, 3),
                    codes::make_cauchy_rs(4, 2)}) {
    CodeFixture fx(code);
    auto v = fx.views();
    EXPECT_TRUE(fx.code->scrub(v).clean()) << code->name();
    EXPECT_FALSE(fx.code->locate_single_corruption(v).has_value());
  }
}

TEST(Scrub, DetectsDataCorruption) {
  CodeFixture fx(codes::make_rs(6, 3));
  fx.buffers.node(2)[10] ^= 0x01;
  auto v = fx.views();
  const auto result = fx.code->scrub(v);
  // RS: every parity contains every data element.
  EXPECT_EQ(result.mismatched.size(), 3u);
}

TEST(Scrub, DetectsParityCorruption) {
  CodeFixture fx(codes::make_rs(6, 3));
  fx.buffers.node(7)[0] ^= 0x80;  // second parity node
  auto v = fx.views();
  const auto result = fx.code->scrub(v);
  ASSERT_EQ(result.mismatched.size(), 1u);
  EXPECT_EQ(result.mismatched[0].node, 7);
}

TEST(Scrub, LocalizesCorruptionInArrayCodes) {
  // STAR signatures are distinctive per element: position-based
  // localization identifies the corrupt element exactly.
  CodeFixture fx(codes::make_star(7, 3));
  const int victim_node = 3;
  const int victim_row = 2;
  fx.buffers.node(victim_node)[static_cast<std::size_t>(victim_row) * fx.block + 5] ^=
      0x10;
  auto v = fx.views();
  const auto located = fx.code->locate_single_corruption(v);
  ASSERT_TRUE(located.has_value());
  EXPECT_EQ(located->node, victim_node);
  EXPECT_EQ(located->row, victim_row);
}

TEST(Scrub, RsLocalizationIsAmbiguous) {
  // Every RS data element touches every parity: signatures collide, so
  // position-based localization must refuse rather than guess.
  CodeFixture fx(codes::make_rs(6, 3));
  fx.buffers.node(1)[3] ^= 0x04;
  auto v = fx.views();
  EXPECT_FALSE(fx.code->locate_single_corruption(v).has_value());
}

// ---------------------------------------------------------------------------
// ApproximateCode-level scrubbing
// ---------------------------------------------------------------------------

struct ApprFixture {
  explicit ApprFixture(const ApprParams& p)
      : code(p, 96), buffers(code.total_nodes(), code.node_bytes()) {
    std::vector<std::uint8_t> imp(code.important_capacity());
    std::vector<std::uint8_t> unimp(code.unimportant_capacity());
    Rng rng(9);
    fill_random(imp.data(), imp.size(), rng);
    fill_random(unimp.data(), unimp.size(), rng);
    auto spans = buffers.spans();
    code.scatter(imp, unimp, spans);
    code.encode(spans);
  }
  ApproximateCode code;
  StripeBuffers buffers;
};

TEST(ApprScrub, CleanDeploymentPasses) {
  for (const auto structure : {Structure::Even, Structure::Uneven}) {
    ApprFixture fx({Family::RS, 4, 1, 2, 4, structure});
    auto spans = fx.buffers.spans();
    EXPECT_TRUE(fx.code.scrub(spans).clean());
  }
}

TEST(ApprScrub, FlagsCorruptLocalParity) {
  ApprFixture fx({Family::RS, 4, 1, 2, 4, Structure::Even});
  const ApprParams p = fx.code.params();
  const int lp = local_parity_node_id(p, 2, 0);
  fx.buffers.node(lp)[7] ^= 0x20;
  auto spans = fx.buffers.spans();
  const auto report = fx.code.scrub(spans);
  ASSERT_FALSE(report.clean());
  bool found = false;
  for (const auto& e : report.mismatched) found |= e.node == lp;
  EXPECT_TRUE(found);
}

TEST(ApprScrub, FlagsCorruptGlobalSegment) {
  for (const auto structure : {Structure::Even, Structure::Uneven}) {
    ApprFixture fx({Family::RS, 4, 1, 2, 4, structure});
    const ApprParams p = fx.code.params();
    const int gp = global_parity_node_id(p, 1);
    fx.buffers.node(gp)[13] ^= 0x40;
    auto spans = fx.buffers.spans();
    const auto report = fx.code.scrub(spans);
    ASSERT_FALSE(report.clean()) << structure_name(structure);
    bool found = false;
    for (const auto& e : report.mismatched) found |= e.node == gp;
    EXPECT_TRUE(found) << structure_name(structure);
  }
}

TEST(ApprScrub, CorruptImportantDataTripsLocalAndGlobal) {
  ApprFixture fx({Family::RS, 4, 1, 2, 4, Structure::Even});
  const ApprParams p = fx.code.params();
  // First byte of a data node is inside the important range (Even prefix).
  fx.buffers.node(data_node_id(p, 1, 2))[0] ^= 0x11;
  auto spans = fx.buffers.spans();
  const auto report = fx.code.scrub(spans);
  bool local_hit = false;
  bool global_hit = false;
  for (const auto& e : report.mismatched) {
    const auto role = node_role(p, e.node);
    local_hit |= role.kind == NodeRole::Kind::LocalParity;
    global_hit |= role.kind == NodeRole::Kind::GlobalParity;
  }
  EXPECT_TRUE(local_hit);
  EXPECT_TRUE(global_hit);
}

TEST(ApprScrub, CorruptUnimportantDataTripsOnlyLocal) {
  ApprFixture fx({Family::RS, 4, 1, 2, 4, Structure::Even});
  const ApprParams p = fx.code.params();
  // Last byte of a data node element is in the unimportant range.
  fx.buffers.node(data_node_id(p, 1, 2))[fx.code.block_size() - 1] ^= 0x11;
  auto spans = fx.buffers.spans();
  const auto report = fx.code.scrub(spans);
  ASSERT_FALSE(report.clean());
  for (const auto& e : report.mismatched) {
    EXPECT_EQ(node_role(p, e.node).kind, NodeRole::Kind::LocalParity);
  }
}

}  // namespace
}  // namespace approx::core
