// End-to-end behaviour of the Approximate Code framework across families,
// structures and parameters: unequal protection semantics, scatter/gather
// geometry, global parity reconstruction and I/O accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "common/buffer.h"
#include "common/prng.h"
#include "codes/verify.h"
#include "core/approximate_code.h"

namespace approx::core {
namespace {

using codes::Family;

struct Fixture {
  explicit Fixture(const ApprParams& p, std::size_t block = 96)
      : code(p, block),
        buffers(code.total_nodes(), code.node_bytes()),
        important(code.important_capacity()),
        unimportant(code.unimportant_capacity()) {
    Rng rng(0x5eedu + static_cast<unsigned>(p.k));
    fill_random(important.data(), important.size(), rng);
    fill_random(unimportant.data(), unimportant.size(), rng);
    auto spans = buffers.spans();
    code.scatter(important, unimportant, spans);
    code.encode(spans);
    for (int n = 0; n < code.total_nodes(); ++n) {
      snapshot.emplace_back(buffers.node(n).begin(), buffers.node(n).end());
    }
  }

  RepairReport wipe_and_repair(const std::vector<int>& erased) {
    for (const int e : erased) buffers.clear_node(e);
    auto spans = buffers.spans();
    return code.repair(spans, erased);
  }

  bool node_matches(int n) const {
    return std::equal(buffers.node(n).begin(), buffers.node(n).end(),
                      snapshot[static_cast<std::size_t>(n)].begin());
  }

  // Gather and compare the important stream with the original.
  bool important_matches() {
    std::vector<std::uint8_t> imp(code.important_capacity());
    std::vector<std::uint8_t> unimp(code.unimportant_capacity());
    auto spans = buffers.spans();
    code.gather(spans, imp, unimp);
    return imp == important;
  }

  ApproximateCode code;
  StripeBuffers buffers;
  std::vector<std::uint8_t> important;
  std::vector<std::uint8_t> unimportant;
  std::vector<std::vector<std::uint8_t>> snapshot;
};

struct Config {
  Family family;
  int k, r, g, h;
  Structure structure;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  const Config& c = info.param;
  return codes::family_name(c.family) + "_k" + std::to_string(c.k) + "_r" +
         std::to_string(c.r) + "_g" + std::to_string(c.g) + "_h" +
         std::to_string(c.h) + "_" + structure_name(c.structure);
}

class ApprCodeTest : public testing::TestWithParam<Config> {
 protected:
  ApprParams params() const {
    const Config& c = GetParam();
    return ApprParams{c.family, c.k, c.r, c.g, c.h, c.structure};
  }
};

TEST_P(ApprCodeTest, EncodeMakesEveryStripeLocallyConsistent) {
  Fixture fx(params());
  // Wiping any single local parity node and re-repairing restores it.
  const ApprParams p = fx.code.params();
  for (int s = 0; s < p.h; ++s) {
    const int lp = local_parity_node_id(p, s, 0);
    auto report = fx.wipe_and_repair({lp});
    EXPECT_TRUE(report.fully_recovered);
    EXPECT_TRUE(fx.node_matches(lp));
  }
}

TEST_P(ApprCodeTest, LocalToleranceRepairsEverything) {
  // Any r failures inside one stripe: full repair, no data loss.
  Fixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int i = 0; i < p.r; ++i) erased.push_back(data_node_id(p, 1 % p.h, i));
  auto report = fx.wipe_and_repair(erased);
  EXPECT_TRUE(report.fully_recovered);
  EXPECT_EQ(report.unimportant_data_bytes_lost, 0u);
  EXPECT_EQ(report.important_data_bytes_lost, 0u);
  for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
}

TEST_P(ApprCodeTest, FailuresSpreadAcrossStripesRepairLocally) {
  // One failure per stripe stays within every local tolerance.
  Fixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int s = 0; s < p.h; ++s) erased.push_back(data_node_id(p, s, s % p.k));
  auto report = fx.wipe_and_repair(erased);
  EXPECT_TRUE(report.fully_recovered);
  for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
  for (const auto& so : report.stripes) {
    EXPECT_NE(so.kind, StripeOutcome::Kind::ImportantOnlyRepair);
    EXPECT_NE(so.kind, StripeOutcome::Kind::Unrecoverable);
  }
}

TEST_P(ApprCodeTest, BeyondLocalToleranceRecoversImportantData) {
  // r+g failures concentrated in one stripe: important data always
  // recovered; unimportant data of that stripe's failed data nodes lost
  // (Even) or lost/absent per structure.
  Fixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int i = 0; i < p.r + p.g && i < p.k; ++i) erased.push_back(data_node_id(p, 0, i));
  auto report = fx.wipe_and_repair(erased);
  EXPECT_TRUE(report.all_important_recovered) << fx.code.name();
  EXPECT_TRUE(fx.important_matches()) << fx.code.name();
  if (p.structure == Structure::Even) {
    EXPECT_FALSE(report.fully_recovered);
    EXPECT_GT(report.unimportant_data_bytes_lost, 0u);
  } else {
    // Stripe 0 is fully important: everything is rebuilt.
    EXPECT_TRUE(report.fully_recovered);
    for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
  }
}

TEST_P(ApprCodeTest, GlobalParityLossIsReencoded) {
  Fixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int t = 0; t < p.g; ++t) erased.push_back(global_parity_node_id(p, t));
  auto report = fx.wipe_and_repair(erased);
  EXPECT_TRUE(report.fully_recovered);
  for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
}

TEST_P(ApprCodeTest, MixedDataAndGlobalFailure) {
  // r data failures in one stripe + one global node.
  Fixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased{global_parity_node_id(p, 0)};
  for (int i = 0; i < p.r; ++i) erased.push_back(data_node_id(p, 0, i));
  auto report = fx.wipe_and_repair(erased);
  EXPECT_TRUE(report.fully_recovered) << fx.code.name();
  for (int n = 0; n < fx.code.total_nodes(); ++n) EXPECT_TRUE(fx.node_matches(n));
}

TEST_P(ApprCodeTest, ScatterGatherRoundtrip) {
  Fixture fx(params());
  EXPECT_TRUE(fx.important_matches());
  std::vector<std::uint8_t> imp(fx.code.important_capacity());
  std::vector<std::uint8_t> unimp(fx.code.unimportant_capacity());
  auto spans = fx.buffers.spans();
  fx.code.gather(spans, imp, unimp);
  EXPECT_EQ(unimp, fx.unimportant);
}

TEST_P(ApprCodeTest, AccountingIsConsistent) {
  Fixture fx(params());
  const ApprParams p = fx.code.params();
  std::vector<int> erased;
  for (int i = 0; i < p.r + p.g && i < p.k; ++i) erased.push_back(data_node_id(p, 0, i));
  auto report = fx.code.plan_repair(erased);
  const std::size_t sum = std::accumulate(report.bytes_read_per_node.begin(),
                                          report.bytes_read_per_node.end(),
                                          std::size_t{0});
  EXPECT_EQ(sum, report.bytes_read);
  // Failed nodes are never read from.
  for (const int e : erased) {
    EXPECT_EQ(report.bytes_read_per_node[static_cast<std::size_t>(e)], 0u);
  }
  EXPECT_GT(report.bytes_written, 0u);
}

const Config kConfigs[] = {
    {Family::RS, 4, 1, 2, 3, Structure::Even},
    {Family::RS, 4, 1, 2, 3, Structure::Uneven},
    {Family::RS, 5, 2, 1, 4, Structure::Even},
    {Family::RS, 5, 2, 1, 4, Structure::Uneven},
    {Family::LRC, 6, 1, 2, 4, Structure::Even},
    {Family::LRC, 6, 1, 2, 4, Structure::Uneven},
    {Family::STAR, 5, 1, 2, 4, Structure::Even},
    {Family::STAR, 5, 1, 2, 4, Structure::Uneven},
    {Family::STAR, 5, 2, 1, 4, Structure::Even},
    {Family::STAR, 5, 2, 1, 3, Structure::Uneven},
    {Family::TIP, 5, 1, 2, 4, Structure::Even},
    {Family::TIP, 5, 1, 2, 6, Structure::Uneven},
    {Family::TIP, 3, 2, 1, 3, Structure::Even},
    {Family::CRS, 5, 1, 2, 4, Structure::Even},
    {Family::CRS, 4, 2, 1, 3, Structure::Uneven},
};

INSTANTIATE_TEST_SUITE_P(AllFamilies, ApprCodeTest, testing::ValuesIn(kConfigs),
                         config_name);

// Exhaustive unequal-protection sweep on a small instance: for EVERY double
// failure pattern, important data must be recoverable; for every single
// pattern, everything must be.
TEST(ApprCodeExhaustive, DoubleFailuresAlwaysRecoverImportantData) {
  const ApprParams p{Family::RS, 3, 1, 2, 3, Structure::Even};
  ApproximateCode code(p, 48);
  const int n = code.total_nodes();
  codes::for_each_subset(n, 2, [&](const std::vector<int>& erased) {
    Fixture fx(p, 48);
    auto report = fx.wipe_and_repair(erased);
    EXPECT_TRUE(report.all_important_recovered)
        << "erased " << erased[0] << "," << erased[1];
    EXPECT_TRUE(fx.important_matches());
    return true;
  });
}

// For every family, every failure pattern up to r+g nodes (including
// local/global parities in any mix) must keep important data recoverable -
// the framework's central guarantee, proven by enumeration.
TEST(ApprCodeExhaustive, AllFamiliesAllPatternsUpToTolerance) {
  const Config configs[] = {
      {Family::RS, 3, 1, 2, 3, Structure::Even},
      {Family::RS, 3, 2, 1, 3, Structure::Uneven},
      {Family::STAR, 3, 1, 2, 3, Structure::Even},
      {Family::TIP, 3, 1, 2, 3, Structure::Uneven},
      {Family::CRS, 3, 1, 2, 3, Structure::Even},
      {Family::LRC, 3, 1, 2, 3, Structure::Uneven},
  };
  for (const Config& c : configs) {
    const ApprParams p{c.family, c.k, c.r, c.g, c.h, c.structure};
    ApproximateCode code(p, 24);
    for (int f = 1; f <= p.r + p.g; ++f) {
      codes::for_each_subset(code.total_nodes(), f,
                             [&](const std::vector<int>& erased) {
                               const auto report = code.plan_repair(erased);
                               EXPECT_TRUE(report.all_important_recovered)
                                   << p.name() << " f=" << f;
                               if (f <= p.r) {
                                 EXPECT_TRUE(report.fully_recovered)
                                     << p.name() << " f=" << f;
                               }
                               return true;
                             });
    }
  }
}

TEST(ApprCodeExhaustive, TripleFailuresAlwaysRecoverImportantData) {
  const ApprParams p{Family::RS, 3, 1, 2, 3, Structure::Uneven};
  ApproximateCode code(p, 48);
  codes::for_each_subset(code.total_nodes(), 3, [&](const std::vector<int>& erased) {
    Fixture fx(p, 48);
    auto report = fx.wipe_and_repair(erased);
    EXPECT_TRUE(report.all_important_recovered)
        << "erased " << erased[0] << "," << erased[1] << "," << erased[2];
    EXPECT_TRUE(fx.important_matches());
    return true;
  });
}

}  // namespace
}  // namespace approx::core
