// Minimal JSON parser for tests (objects/arrays/strings/numbers/bools/
// null) - enough to round-trip the exporters under test (registry dumps,
// bench artifacts, Chrome trace-event files).  Malformed input fails the
// calling test through gtest expectations rather than throwing.
#pragma once

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace approx::testsupport {

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject>
      v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  double number() const { return std::get<double>(v); }
  const std::string& string() const { return std::get<std::string>(v); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    EXPECT_EQ(pos_, s_.size()) << "trailing bytes after JSON document";
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    EXPECT_LT(pos_, s_.size()) << "unexpected end of JSON";
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }
  void expect(char c) {
    EXPECT_EQ(peek(), c);
    ++pos_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return JsonValue{object()};
      case '[': return JsonValue{array()};
      case '"': return JsonValue{string()};
      case 't': literal("true"); return JsonValue{true};
      case 'f': literal("false"); return JsonValue{false};
      case 'n': literal("null"); return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }

  void literal(const char* lit) {
    skip_ws();
    for (const char* p = lit; *p != '\0'; ++p) expect_raw(*p);
  }
  void expect_raw(char c) {
    ASSERT_LT(pos_, s_.size());
    EXPECT_EQ(s_[pos_], c);
    ++pos_;
  }

  JsonObject object() {
    JsonObject out;
    expect('{');
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      std::string key = string();
      expect(':');
      out.emplace(std::move(key), value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return out;
    }
  }

  JsonArray array() {
    JsonArray out;
    expect('[');
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    while (true) {
      out.push_back(value());
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return out;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        EXPECT_LT(pos_, s_.size()) << "dangling escape";
        if (pos_ >= s_.size()) break;
        const char e = s_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            EXPECT_LE(pos_ + 4, s_.size());
            if (pos_ + 4 > s_.size()) break;
            out += static_cast<char>(
                std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    expect_raw('"');
    return out;
  }

  double number() {
    skip_ws();
    std::size_t used = 0;
    const double d = std::stod(s_.substr(pos_), &used);
    EXPECT_GT(used, 0u);
    pos_ += used;
    return d;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace approx::testsupport
